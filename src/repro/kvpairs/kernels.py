"""Vectorized compute kernels for the sort hot path (OVC merge + radix
partition).

Since the network path went zero-copy, the dominant CPU costs of every
TeraSort/CodedTeraSort run are the k-way merge (Reduce and the external
merge over spilled runs) and the map-side partition pass.  This module
is the compute-kernel layer behind both, adapting two classic ideas:

**Offset-value coding (OVC)** — "Robust and Efficient Sorting with
Offset-Value Coding" (arXiv:2209.08420).  In a sorted run, each record
gets a small code relative to its predecessor: the offset of the first
differing key byte, packed with the byte value at that offset into one
``uint16``::

    code = (KEY_BYTES - offset) * 256 + key[offset]    # 0 for duplicates

Codes order records *relative to a shared base* — larger code means
larger key — so most of what a merge needs to know about a run (where
the distinct-key group boundaries are, whether the run really is
sorted) is answered by the 2-byte code column without touching the
10-byte keys:

* ``code == 0`` marks an exact duplicate of the predecessor, giving the
  run's distinct-key run-length structure for free; merges use it to
  rank whole duplicate groups at once (one comparison per *distinct*
  key instead of one per record — the big win on skewed inputs);
* computing the column detects inversions as a byproduct, so code
  computation **is** sortedness validation (``is_sorted`` scans and the
  repeated per-round re-validation of the classic merge disappear);
* codes survive merges: when two runs interleave, an output record
  preceded by its own run-predecessor keeps its stored code unchanged
  (the paper's central theorem), so only the run-crossover positions
  need a fresh byte comparison.

**Prefix-word comparisons** — the vectorized counterpart of resolving a
comparison on a cached code instead of the full key.  Rank queries
between runs compare the cached first-8-bytes-as-``uint64`` column
(``hi``, one machine-word compare) and fall back to full ``S10`` key
compares only for the queries whose prefix word ties.  On TeraGen keys
ties are ~0; on adversarial shared-prefix keys the kernel degrades
gracefully to exactly the classic full-key path.

The **MSB radix partition** replaces the per-record
``np.searchsorted(boundaries, hi)`` walk with a 2^16-entry lookup table
on the top 16 key bits (one shift + one gather per record; only records
landing in the few table cells that contain a splitter fall back to
``searchsorted``), and the partition *grouping* pass replaces the
``int64`` stable argsort with a radix bucket sort over ``int16`` bucket
ids, producing grouped order and per-partition counts in one pass.

Every kernel is byte-identical to the classic implementation it
replaces — same output records, same stable tie order.  The
``REPRO_KERNELS=classic`` environment escape hatch keeps the old
implementations selectable for A/B benchmarking; ``repro`` reads it at
call time, so a single process can run both paths back to back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kvpairs.records import KEY_BYTES, RECORD_DTYPE, RecordBatch

#: Environment variable selecting the kernel implementation.
KERNELS_ENV = "REPRO_KERNELS"

#: On-disk / in-memory dtype of an OVC column: little-endian uint16.
OVC_DTYPE = np.dtype("<u2")

#: Bytes per OVC code (the sidecar file record size).
OVC_BYTES = OVC_DTYPE.itemsize

#: Minimum batch size for which building the radix table pays off.
RADIX_MIN_BATCH = 2048

#: Number of radix table cells (top 16 bits of the key prefix).
_RADIX_CELLS = 1 << 16
_RADIX_SHIFT = np.uint64(48)


def kernel_mode() -> str:
    """The active kernel implementation: ``"ovc"`` (default) or ``"classic"``.

    Read from ``$REPRO_KERNELS`` at call time so tests and A/B benches
    can flip modes inside one process.  Unknown values fall back to
    ``"ovc"``.
    """
    mode = os.environ.get(KERNELS_ENV, "ovc").strip().lower()
    return "classic" if mode == "classic" else "ovc"


def use_ovc() -> bool:
    """True when the OVC/radix kernels are active."""
    return kernel_mode() == "ovc"


# ---------------------------------------------------------------------------
# Comparison accounting (read by bench_merge_kernels.py).
# ---------------------------------------------------------------------------


@dataclass
class KernelStats:
    """Counters quantifying what the merge kernels did (not) touch.

    A *rank query* asks "how many records of the other run precede this
    key".  ``prefix_resolved`` queries were answered by one ``uint64``
    prefix-word compare chain; ``fallback_queries`` also walked full
    ``S10`` keys; ``dup_records_skipped`` records never issued a query
    at all (their rank was copied from their duplicate-group head via
    the OVC column).
    """

    merge_records: int = 0
    rank_queries: int = 0
    prefix_resolved: int = 0
    fallback_queries: int = 0
    dup_records_skipped: int = 0
    codes_reused: int = 0
    codes_recomputed: int = 0

    def reset(self) -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, 0)

    def snapshot(self) -> dict:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}

    def key_bytes_per_query(self) -> float:
        """Estimated key bytes examined per rank query (classic: 10)."""
        if self.rank_queries == 0:
            return 0.0
        touched = 8 * self.rank_queries + KEY_BYTES * self.fallback_queries
        return touched / self.rank_queries


#: Module-level counters; cheap (a few Python ints per merge call).
stats = KernelStats()

#: Pseudo-stage prefix carrying per-job kernel-counter deltas to the
#: driver inside each node's raw stage dict (see ``export_stats``).
KS_PREFIX = "ks_"


def export_stats(stopwatch, before: dict) -> None:
    """Stamp this job's kernel-counter deltas as ``ks_*`` pseudo-stages.

    Node programs snapshot :data:`stats` at run start and call this at
    run end; the deltas ride the per-node stage dicts to the driver
    (values are counts, not seconds — the same channel the residency
    and speculation stamps use).  Zero deltas are skipped so jobs that
    never touched a kernel add no keys.
    """
    after = stats.snapshot()
    for name, value in after.items():
        delta = value - before.get(name, 0)
        if delta:
            stopwatch.add(KS_PREFIX + name, float(delta))


def stats_meta(per_node_times) -> dict:
    """Sum every node's ``ks_*`` stamps into one kernel-stats dict.

    The driver-side finalize aggregator (the ``SortRun.meta
    ["kernel_stats"]`` payload): counter totals across nodes plus the
    active kernel mode, so benches can attribute wins to comm-hiding
    vs merge speed.
    """
    total = {name: 0 for name in KernelStats.__dataclass_fields__}
    for times in per_node_times:
        for name in total:
            value = times.get(KS_PREFIX + name)
            if value:
                total[name] += int(value)
    total["mode"] = kernel_mode()
    return total


# ---------------------------------------------------------------------------
# Key columns and OVC code computation.
# ---------------------------------------------------------------------------


def key_matrix(batch: RecordBatch) -> np.ndarray:
    """Keys as a contiguous ``(n, 10)`` uint8 matrix (copies 10n bytes)."""
    n = len(batch)
    if n == 0:
        return np.empty((0, KEY_BYTES), dtype=np.uint8)
    keys = np.ascontiguousarray(batch.keys)
    return keys.view(np.uint8).reshape(n, KEY_BYTES)


def prefix_words(batch: RecordBatch) -> np.ndarray:
    """First 8 key bytes as order-preserving native ``uint64`` words."""
    n = len(batch)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    km = key_matrix(batch)
    hi = np.ascontiguousarray(km[:, :8]).view(">u8").reshape(n)
    return hi.astype(np.uint64, copy=False)


def _codes_from_matrix(
    km: np.ndarray, base_key: Optional[bytes], check: bool, what: str
) -> np.ndarray:
    """OVC column for the (sorted) key rows ``km``; see :func:`ovc_codes`."""
    n = len(km)
    codes = np.zeros(n, dtype=OVC_DTYPE)
    if n == 0:
        return codes
    if base_key is None:
        # Virtual minus-infinity predecessor: first difference at offset
        # 0 with the record's own first byte.
        codes[0] = KEY_BYTES * 256 + int(km[0, 0])
    else:
        base = np.frombuffer(base_key, dtype=np.uint8)
        if len(base) != KEY_BYTES:
            raise ValueError(f"base_key must be {KEY_BYTES} bytes")
        neq = km[0] != base
        if neq.any():
            off = int(np.argmax(neq))
            if check and km[0, off] < base[off]:
                raise ValueError(f"{what} is not sorted (vs base key)")
            codes[0] = (KEY_BYTES - off) * 256 + int(km[0, off])
    if n == 1:
        return codes
    neq = km[1:] != km[:-1]
    differs = neq.any(axis=1)
    off = np.argmax(neq, axis=1)
    rows = np.arange(n - 1)
    cur = km[1:][rows, off]
    if check:
        prev = km[:-1][rows, off]
        bad = differs & (cur < prev)
        if bad.any():
            raise ValueError(f"{what} is not sorted")
    packed = (KEY_BYTES - off) * 256 + cur
    codes[1:] = np.where(differs, packed, 0).astype(OVC_DTYPE)
    return codes


def ovc_codes(
    batch: RecordBatch,
    base_key: Optional[bytes] = None,
    check: bool = True,
    what: str = "run",
) -> np.ndarray:
    """Per-record offset-value codes for a sorted ``batch``.

    Args:
        batch: the sorted run (or a window of one).
        base_key: the 10-byte key of the record *preceding* ``batch``
            (the previous window's last record), or ``None`` for the
            virtual minus-infinity predecessor of a run's first record.
            This is what carries codes correctly across merge-window
            boundaries.
        check: raise ``ValueError`` on a descending key pair — code
            computation doubles as sortedness validation.  ``False``
            means the caller guarantees sortedness.
        what: label used in the error message (e.g. ``"run 3"``).

    Returns:
        ``uint16`` array, one code per record: ``0`` for an exact
        duplicate of the predecessor, else
        ``(10 - offset) * 256 + key[offset]`` where ``offset`` is the
        first differing byte.  Codes relative to the same predecessor
        order exactly as the keys do.
    """
    return _codes_from_matrix(key_matrix(batch), base_key, check, what)


# ---------------------------------------------------------------------------
# Column bundles: a run plus its cached comparison columns.
# ---------------------------------------------------------------------------


@dataclass
class RunColumns:
    """A sorted run bundled with its comparison columns.

    ``hi`` is the ``uint64`` prefix-word column; ``codes`` the OVC
    column (``codes[0]`` may be relative to a predecessor *outside*
    ``batch`` — window carry — which is fine: position 0 always starts
    a duplicate group regardless of its code).
    """

    batch: RecordBatch
    hi: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_batch(
        cls,
        batch: RecordBatch,
        codes: Optional[np.ndarray] = None,
        base_key: Optional[bytes] = None,
        check: bool = True,
        what: str = "run",
    ) -> "RunColumns":
        km = key_matrix(batch)
        n = len(batch)
        hi = (
            np.ascontiguousarray(km[:, :8]).view(">u8").reshape(n)
            .astype(np.uint64, copy=False)
            if n
            else np.empty(0, dtype=np.uint64)
        )
        if codes is None:
            codes = _codes_from_matrix(km, base_key, check, what)
        return cls(batch=batch, hi=hi, codes=codes)

    def __len__(self) -> int:
        return len(self.batch)

    def slice(self, start: int, stop: int) -> "RunColumns":
        return RunColumns(
            batch=self.batch.slice(start, stop),
            hi=self.hi[start:stop],
            codes=self.codes[start:stop],
        )

    @staticmethod
    def concat(parts: Sequence["RunColumns"]) -> "RunColumns":
        """Concatenate *consecutive* windows of one run (codes stay valid:
        each window's first code is relative to the previous window's
        last record, which concatenation restores as its predecessor)."""
        return RunColumns(
            batch=RecordBatch.concat([p.batch for p in parts]),
            hi=np.concatenate([p.hi for p in parts]),
            codes=np.concatenate([p.codes for p in parts]),
        )


# ---------------------------------------------------------------------------
# The OVC merge kernel.
# ---------------------------------------------------------------------------

#: Engage duplicate-group compression when at least this fraction of a
#: side's records are duplicates (below it the gathers cost more than
#: the searchsorted they save).
_DUP_COMPRESS_MIN_FRACTION = 0.125


def _group_starts(codes: np.ndarray) -> np.ndarray:
    """Indices starting a distinct-key group (index 0 always does)."""
    mask = np.empty(len(codes), dtype=bool)
    mask[0] = True
    np.not_equal(codes[1:], 0, out=mask[1:])
    return np.flatnonzero(mask)


def _ranks_strictly_less(query: RunColumns, run: RunColumns) -> np.ndarray:
    """For each query record, how many of ``run``'s records have a
    strictly smaller key.

    Resolves each query on the ``uint64`` prefix word; only queries
    whose prefix word ties a run prefix word fall back to full ``S10``
    key compares.  When either side is duplicate-heavy (per its OVC
    column), ranks are computed per *distinct-key group* and expanded —
    duplicates never issue a query.
    """
    nq, nr = len(query), len(run)
    q_hi, q_codes = query.hi, query.codes
    r_hi, r_codes = run.hi, run.codes
    q_starts = r_starts = None
    # A bundle may carry no code column (len 0): rounds over low-duplicate
    # data skip code assembly, trading dup compression it wouldn't use.
    q_dups = nq - 1 - np.count_nonzero(q_codes[1:]) if len(q_codes) == nq and nq else 0
    r_dups = nr - 1 - np.count_nonzero(r_codes[1:]) if len(r_codes) == nr and nr else 0
    if q_dups >= nq * _DUP_COMPRESS_MIN_FRACTION:
        q_starts = _group_starts(q_codes)
        q_hi = q_hi[q_starts]
    if r_dups >= nr * _DUP_COMPRESS_MIN_FRACTION:
        r_starts = _group_starts(r_codes)
        r_hi = r_hi[r_starts]

    ranks = np.searchsorted(r_hi, q_hi, side="left")
    upper = np.searchsorted(r_hi, q_hi, side="right")
    ties = np.flatnonzero(ranks != upper)
    stats.rank_queries += len(q_hi)
    stats.prefix_resolved += len(q_hi) - len(ties)
    stats.fallback_queries += len(ties)
    if len(ties):
        q_keys = query.batch.keys
        if q_starts is not None:
            q_keys = q_keys[q_starts]
        r_keys = run.batch.keys
        if r_starts is not None:
            r_keys = r_keys[r_starts]
        ranks[ties] = np.searchsorted(r_keys, q_keys[ties], side="left")

    if r_starts is not None:
        # Distinct-group rank -> record rank: records before group j
        # are exactly start-of-group-j many.
        ext = np.concatenate([r_starts, [nr]])
        ranks = ext[ranks]
    if q_starts is not None:
        # Expand group ranks back to every query record.
        group_id = np.zeros(nq, dtype=np.int64)
        group_id[q_starts] = 1
        group_id = np.cumsum(group_id) - 1
        ranks = ranks[group_id]
        stats.dup_records_skipped += nq - len(q_starts)
    return ranks


def _crossover_codes(
    out_keys: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Fresh OVC codes for output positions whose predecessor came from
    the other run (vectorized first-diff over just those key pairs)."""
    cur = np.ascontiguousarray(out_keys[positions]).view(np.uint8)
    prev = np.ascontiguousarray(out_keys[positions - 1]).view(np.uint8)
    cur = cur.reshape(len(positions), KEY_BYTES)
    prev = prev.reshape(len(positions), KEY_BYTES)
    neq = cur != prev
    differs = neq.any(axis=1)
    off = np.argmax(neq, axis=1)
    val = cur[np.arange(len(positions)), off]
    packed = (KEY_BYTES - off) * 256 + val
    return np.where(differs, packed, 0).astype(OVC_DTYPE)


def merge_two(
    a: RunColumns, b: RunColumns, want_codes: bool = True,
    want_hi: bool = True,
) -> RunColumns:
    """Stable merge of two sorted column bundles (``a`` wins key ties).

    Rank queries run only in one direction (``a`` against ``b``); ``b``'s
    records fill the complement slots, which is exactly the stable
    order.  With ``want_codes`` the output carries a valid OVC column:
    stored codes are reused wherever an output record is preceded by its
    own run predecessor (the OVC invariant), and only run-crossover
    positions get a fresh byte comparison.  ``want_hi=False`` also skips
    the prefix-word scatter (a tournament's final round feeds no further
    rank queries).
    """
    na, nb = len(a), len(b)
    if na == 0:
        return b
    if nb == 0:
        return a
    pos_a = np.arange(na, dtype=np.int64) + _ranks_strictly_less(a, b)
    from_b = np.ones(na + nb, dtype=bool)
    from_b[pos_a] = False
    pos_b = np.flatnonzero(from_b)
    out = np.empty(na + nb, dtype=RECORD_DTYPE)
    out[pos_a] = a.batch.array
    out[pos_b] = b.batch.array
    stats.merge_records += na + nb
    merged = RecordBatch(out)
    if want_hi or want_codes:
        hi = np.empty(na + nb, dtype=np.uint64)
        hi[pos_a] = a.hi
        hi[pos_b] = b.hi
    else:
        hi = np.empty(0, dtype=np.uint64)
    if not want_codes:
        return RunColumns(
            batch=merged, hi=hi, codes=np.empty(0, dtype=OVC_DTYPE)
        )
    if len(a.codes) != na or len(b.codes) != nb:
        # An input bundle dropped its code column; recompute from scratch.
        return RunColumns(
            batch=merged, hi=hi, codes=ovc_codes(merged, check=False)
        )
    codes = np.empty(na + nb, dtype=OVC_DTYPE)
    codes[pos_a] = a.codes
    codes[pos_b] = b.codes
    # Crossovers: output positions whose predecessor came from the other
    # run.  Everything else keeps its stored code (predecessor unchanged).
    cross = np.flatnonzero(from_b[1:] != from_b[:-1]) + 1
    if len(cross):
        codes[cross] = _crossover_codes(merged.keys, cross)
    # codes[0]: whichever run starts the output contributes its own
    # first code, already relative to that run's base.
    stats.codes_reused += na + nb - len(cross)
    stats.codes_recomputed += len(cross)
    return RunColumns(batch=merged, hi=hi, codes=codes)


def merge_sorted_columns(
    cols: Sequence[RunColumns], want_codes: bool = False
) -> RunColumns:
    """Stable k-way merge of column bundles (tournament of pairwise
    :func:`merge_two` merges; ties preserve run order).

    Code propagation through intermediate rounds is *adaptive*: codes
    are carried (stored codes reused, only run-crossover positions
    recomputed) when the inputs are duplicate-heavy enough for the next
    round's duplicate-group compression to pay for the crossover fixup;
    on low-duplicate data (e.g. TeraGen keys) rounds skip code assembly
    entirely.  The final round assembles codes only if the caller asked.
    """
    live = [c for c in cols if len(c)]
    if not live:
        return RunColumns(
            batch=RecordBatch.empty(),
            hi=np.empty(0, dtype=np.uint64),
            codes=np.empty(0, dtype=OVC_DTYPE),
        )
    total = sum(len(c) for c in live)
    dups = sum(
        len(c) - np.count_nonzero(c.codes)
        for c in live
        if len(c.codes) == len(c)
    )
    dup_heavy = dups >= total * _DUP_COMPRESS_MIN_FRACTION
    while len(live) > 1:
        final_round = len(live) <= 2
        merged = [
            merge_two(
                live[i],
                live[i + 1],
                want_codes=want_codes if final_round else dup_heavy,
                want_hi=not final_round or want_codes,
            )
            for i in range(0, len(live) - 1, 2)
        ]
        if len(live) % 2:
            merged.append(live[-1])
        live = merged
    return live[0]


# ---------------------------------------------------------------------------
# MSB radix partition.
# ---------------------------------------------------------------------------


@dataclass
class RadixTable:
    """Top-16-bit lookup table for range partitioning.

    ``cells[t]`` is the partition index of every key whose top 16 bits
    equal ``t``, or ``-1`` for the (at most ``K-1``) ambiguous cells
    that contain a splitter boundary and need the ``searchsorted``
    fallback.
    """

    cells: np.ndarray  # (65536,) int32
    has_ambiguous: bool

    @classmethod
    def build(cls, boundaries: np.ndarray) -> "RadixTable":
        cell_floor = (
            np.arange(_RADIX_CELLS, dtype=np.uint64) << _RADIX_SHIFT
        )
        cells = np.searchsorted(boundaries, cell_floor, side="right")
        cells = cells.astype(np.int32)
        # A cell is ambiguous iff a boundary falls strictly inside it
        # (keys below/above the boundary map to different partitions).
        # Marking the boundary's own cell is conservative and correct.
        amb = np.unique(
            (np.asarray(boundaries, dtype=np.uint64) >> _RADIX_SHIFT)
        ).astype(np.int64)
        has_ambiguous = len(amb) > 0
        if has_ambiguous:
            cells[amb] = -1
        return cls(cells=cells, has_ambiguous=has_ambiguous)

    def partition(
        self, hi: np.ndarray, boundaries: np.ndarray
    ) -> np.ndarray:
        """Exact partition index per key prefix (int64)."""
        idx = self.cells[(hi >> _RADIX_SHIFT).astype(np.int64)]
        idx = idx.astype(np.int64)
        if self.has_ambiguous:
            bad = np.flatnonzero(idx < 0)
            if len(bad):
                idx[bad] = np.searchsorted(
                    boundaries, hi[bad], side="right"
                )
        return idx


def group_by_partition(
    idx: np.ndarray, num_partitions: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable grouped order plus per-partition counts, in one pass.

    The grouping permutation comes from a radix bucket sort over the
    ``int16`` bucket ids (NumPy's stable argsort dispatches to radix
    sort for 16-bit integers — O(n), versus the comparison sort an
    ``int64`` stable argsort runs); counts come from one ``bincount``.

    Returns:
        ``(order, counts)`` — ``order`` stably groups records by
        partition; ``counts[j]`` is partition ``j``'s record count.
    """
    counts = np.bincount(idx, minlength=num_partitions)
    if num_partitions <= np.iinfo(np.int16).max:
        order = np.argsort(idx.astype(np.int16), kind="stable")
    else:  # pragma: no cover - K beyond int16 range
        order = np.argsort(idx, kind="stable")
    return order, counts
