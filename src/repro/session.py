"""Sessions: persistent worker pools, declarative job specs, job futures.

The paper's EC2 experiments amortize cluster setup across a whole
benchmark campaign; this module gives the driver API the same shape.  A
:class:`Session` owns a long-lived worker pool on any backend
(:class:`~repro.runtime.inproc.ThreadCluster`,
:class:`~repro.runtime.process.ProcessCluster`, or the multi-host
:class:`~repro.runtime.tcp.TcpCluster`) and accepts many jobs:
on the process backend the fork + socketpair-mesh + reader-thread setup
is paid once per session instead of once per job, with workers running a
control loop over the existing :class:`~repro.runtime.api.Comm` (each
job shifted into its own reserved tag window, see
:meth:`~repro.runtime.api.Comm.begin_job`).

Jobs are *declarative*: the three algorithm entry points are unified as
validated spec dataclasses — :class:`TeraSortSpec`,
:class:`CodedTeraSortSpec`, and :class:`MapReduceSpec` (with
``scheme="coded" | "uncoded"``), all carrying their schedule /
partitioner / placement options.  The sort specs also carry the
out-of-core knobs: ``input=`` takes a
:class:`~repro.kvpairs.datasource.DataSource` descriptor (workers read
their own splits — the control plane stops shipping record bytes),
``memory_budget=`` caps each worker's resident record buffers (spilling
the rest to per-job temp files), and ``output_dir=`` streams sorted
partitions to part files.  Jobs are submitted through one call::

    from repro import Session, ProcessCluster, TeraSortSpec, CodedTeraSortSpec

    with Session(ProcessCluster(8)) as session:
        base = session.submit(TeraSortSpec(data=data))
        fast = session.submit(
            CodedTeraSortSpec(data=data, redundancy=3, schedule="parallel")
        )
        base.result().partitions  # JobHandle is a future
        fast.result().meta["schedule_rounds"]

:meth:`Session.submit` validates the spec synchronously (bad parameters
raise :class:`ValueError` in the caller) and returns a :class:`JobHandle`
future with ``result()`` / ``done()`` / ``wait()`` / ``exception()``;
jobs run strictly in submission order on a background driver thread.
Each job gets its own :class:`~repro.runtime.program.ClusterResult` —
stage times and traffic are isolated per job id, never merged across
jobs.  A failing job reports its error on *its* handle and the session
survives: subsequent jobs run normally (the process pool transparently
re-forks its mesh; the thread pool rebuilds its per-job mailboxes).

The legacy ``run_terasort`` / ``run_coded_terasort`` / ``run_mapreduce``
functions remain as thin one-shot-session shims with unchanged
signatures and results.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence

from repro.core.cmr import CMRRun, MapReduceJob, prepare_mapreduce
from repro.core.coded_terasort import (
    check_coded_params,
    prepare_coded_terasort,
)
from repro.core.groups import check_schedule
from repro.core.outofcore import MIN_MEMORY_BUDGET
from repro.core.terasort import SortRun, prepare_terasort
from repro.kvpairs.datasource import DataSource
from repro.kvpairs.records import RecordBatch
from repro.runtime.errors import WorkerFailure
from repro.runtime.program import ClusterResult, PreparedJob
from repro.utils.subsets import binomial

__all__ = [
    "JobSpec",
    "TeraSortSpec",
    "CodedTeraSortSpec",
    "MapReduceSpec",
    "JobAttempt",
    "JobHandle",
    "Session",
]


# ---------------------------------------------------------------------------
# Job specs — declarative, validated descriptions of one job.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec(ABC):
    """A declarative description of one job a :class:`Session` can run.

    Subclasses are frozen dataclasses naming an algorithm plus all of its
    options; :meth:`validate` raises :class:`ValueError` for parameters
    that cannot run on a ``size``-node cluster (called synchronously by
    :meth:`Session.submit`), and :meth:`prepare` compiles the spec into a
    pool-runnable :class:`~repro.runtime.program.PreparedJob`.
    """

    @abstractmethod
    def validate(self, size: int) -> None:
        """Raise :class:`ValueError` if the spec cannot run on ``size`` nodes."""

    @abstractmethod
    def prepare(self, size: int) -> PreparedJob:
        """Compile the spec for a ``size``-node worker pool."""

    def with_(self, **overrides: Any) -> "JobSpec":
        """A copy of this spec with the given fields replaced.

        A validated :func:`dataclasses.replace` wrapper: unknown field
        names raise :class:`TypeError` and the new spec's own field
        validation (``__post_init__`` where defined) runs on the copy —
        so the elastic re-planner and user code stop hand-copying
        ten-field specs::

            wider = CodedTeraSortSpec(data=data, redundancy=3).with_(
                schedule="parallel"
            )
        """
        bad = set(overrides) - {f for f in type(self).__dataclass_fields__}
        if bad:
            raise TypeError(
                f"{type(self).__name__}.with_() got unknown field(s) "
                f"{sorted(bad)}; valid fields: "
                f"{sorted(type(self).__dataclass_fields__)}"
            )
        return replace(self, **overrides)

    def shrink_to(self, free: int) -> Optional[int]:
        """The largest worker count ``K' <= free`` this spec can re-plan
        to, or ``None`` when it cannot shrink.

        Powers the scheduler's ``shrink_to_fit`` policy: a queued K-wide
        job may run now on fewer free workers instead of waiting for the
        mesh to regrow.  The base spec is not shrinkable; the sort specs
        override this (uncoded: any ``K' >= 2``; coded: the largest
        ``K'`` with a valid ``(K', r)`` per the tradeoff constraints).
        """
        return None

    def _shrink_by_validate(self, free: int, floor: int) -> Optional[int]:
        """Largest ``K' in [floor, free]`` accepted by :meth:`validate`."""
        for k in range(free, floor - 1, -1):
            try:
                self.validate(k)
            except ValueError:
                continue
            return k
        return None


def _check_input_fields(spec) -> None:
    """Shared validation of the sort specs' input/budget/output fields."""
    if (spec.data is None) == (spec.input is None):
        raise ValueError(
            "exactly one of data= (a RecordBatch) or input= (a DataSource) "
            "must be given"
        )
    if spec.data is not None and not isinstance(spec.data, RecordBatch):
        raise ValueError(
            f"data must be a RecordBatch, got {type(spec.data).__name__} "
            "(pass sources via input=)"
        )
    if spec.input is not None and not isinstance(spec.input, DataSource):
        raise ValueError(
            f"input must be a DataSource, got {type(spec.input).__name__}"
        )
    if spec.memory_budget is not None and spec.memory_budget < MIN_MEMORY_BUDGET:
        raise ValueError(
            f"memory_budget must be >= {MIN_MEMORY_BUDGET} bytes, "
            f"got {spec.memory_budget}"
        )
    if spec.output_dir is not None and spec.memory_budget is None:
        raise ValueError(
            "output_dir requires memory_budget (the in-memory path "
            "returns resident partitions)"
        )


@dataclass(frozen=True)
class TeraSortSpec(JobSpec):
    """The uncoded baseline sort (§III): serial unicast shuffle.

    Attributes:
        data: the full input batch (the coordinator's view); mutually
            exclusive with ``input``.
        input: a :class:`~repro.kvpairs.datasource.DataSource` descriptor
            (``FileSource`` / ``TeragenSource`` / ``InlineSource``) —
            workers read their own splits, the control plane ships only
            descriptors for file/teragen kinds.
        memory_budget: per-worker cap (bytes) on resident record buffers;
            enables the out-of-core pipeline (byte-identical output).
        output_dir: with a budget, workers stream their sorted partition
            to ``<output_dir>/part-<rank>`` (a worker-local or shared
            path) and the run's partitions are ``FileSource`` results.
        sampled_partitioner: use sampled quantile splitters instead of
            uniform ones (needed for skewed keys).
        sample_size / sample_seed: splitter sample parameters.
        speculation: enable speculative re-execution of straggling map
            shards (live pool backends only): the driver watches stage
            heartbeats and launches a backup copy of a slow shard's map
            on an already-finished worker — first finisher wins, output
            stays byte-identical (map output per shard is deterministic).
            Requires ``input=`` (shards must be re-readable descriptors)
            and the in-memory path (no ``memory_budget``).
        speculation_wait_factor / speculation_min_wait: a shard is
            declared straggling once the job has run
            ``max(min_wait, wait_factor x median map completion time)``
            seconds and at least half the workers finished their map.
        overlap: enable the streaming-overlap execution mode: each map
            window's partition chunks are shipped the moment the window
            completes (map ↔ shuffle overlap) and arriving runs feed an
            incremental merge frontier (shuffle ↔ reduce overlap), so
            makespan approaches ``max(compute, comm)`` instead of their
            sum.  Output stays byte-identical to the serial schedule.
            Mutually exclusive with ``speculation`` (both rewire the
            shuffle event loop); composes with ``memory_budget``.
    """

    data: Optional[RecordBatch] = None
    input: Optional[DataSource] = None
    memory_budget: Optional[int] = None
    output_dir: Optional[str] = None
    sampled_partitioner: bool = False
    sample_size: int = 10000
    sample_seed: int = 7
    speculation: bool = False
    speculation_wait_factor: float = 1.5
    speculation_min_wait: float = 0.2
    overlap: bool = False

    def validate(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if self.sample_size < 1:
            raise ValueError(
                f"sample_size must be >= 1, got {self.sample_size}"
            )
        _check_input_fields(self)
        if self.speculation:
            if self.input is None:
                raise ValueError(
                    "speculation requires input= (a re-readable DataSource "
                    "descriptor: a backup worker must be able to read the "
                    "straggler's split)"
                )
            if self.memory_budget is not None:
                raise ValueError(
                    "speculation is only supported on the in-memory path "
                    "(no memory_budget)"
                )
            if self.speculation_wait_factor < 1.0:
                raise ValueError(
                    f"speculation_wait_factor must be >= 1.0, "
                    f"got {self.speculation_wait_factor}"
                )
            if self.speculation_min_wait < 0.0:
                raise ValueError(
                    f"speculation_min_wait must be >= 0, "
                    f"got {self.speculation_min_wait}"
                )
        if self.overlap and self.speculation:
            raise ValueError(
                "overlap and speculation are mutually exclusive: both "
                "replace the shuffle with their own event loop (run "
                "stragglers with speculation, hide communication with "
                "overlap)"
            )

    def shrink_to(self, free: int) -> Optional[int]:
        # The uncoded sort re-splits at the descriptor level: any K' >= 2
        # is a valid (smaller) re-plan of the same spec.
        return self._shrink_by_validate(free, floor=2)

    def prepare(self, size: int) -> PreparedJob:
        return prepare_terasort(
            size,
            self.input if self.input is not None else self.data,
            sampled_partitioner=self.sampled_partitioner,
            sample_size=self.sample_size,
            sample_seed=self.sample_seed,
            memory_budget=self.memory_budget,
            output_dir=self.output_dir,
            speculation=self.speculation,
            speculation_wait_factor=self.speculation_wait_factor,
            speculation_min_wait=self.speculation_min_wait,
            overlap=self.overlap,
        )


@dataclass(frozen=True)
class CodedTeraSortSpec(JobSpec):
    """CodedTeraSort (§IV): coded placement + XOR multicast shuffle.

    Attributes:
        data: the full input batch; mutually exclusive with ``input``.
        redundancy: the computation load ``r ∈ [1, K-1]``.
        input / memory_budget / output_dir: out-of-core input descriptor,
            per-worker residency cap, and streamed-output directory — see
            :class:`TeraSortSpec`.
        batches_per_subset: input files per node subset
            (``N = b * C(K, r)``).
        schedule: ``"serial"`` (paper, Fig. 9(b) turns) or ``"parallel"``
            (pipelined conflict-free rounds); byte-identical output.
        sampled_partitioner / sample_size / sample_seed: see
            :class:`TeraSortSpec`.
        overlap: streaming-overlap execution — each multicast group is
            encoded and sent as soon as all of its contributing file
            segments are mapped (map ↔ shuffle), and decoded groups feed
            an incremental merge frontier (shuffle ↔ reduce).  Composes
            with either ``schedule`` (the schedule fixes the posting
            priority) and with ``memory_budget``; output stays
            byte-identical.
    """

    data: Optional[RecordBatch] = None
    redundancy: int = 1
    input: Optional[DataSource] = None
    memory_budget: Optional[int] = None
    output_dir: Optional[str] = None
    batches_per_subset: int = 1
    schedule: str = "serial"
    sampled_partitioner: bool = False
    sample_size: int = 10000
    sample_seed: int = 7
    overlap: bool = False

    def validate(self, size: int) -> None:
        check_coded_params(size, self.redundancy, self.schedule)
        if self.batches_per_subset < 1:
            raise ValueError(
                f"batches_per_subset must be >= 1, "
                f"got {self.batches_per_subset}"
            )
        _check_input_fields(self)

    def shrink_to(self, free: int) -> Optional[int]:
        # Coded geometry: (K', r) stays valid only while r <= K'-1, so
        # the smallest shrink target is r+1 workers (1604.07086's
        # tradeoff constraint); validate() enforces the rest.
        return self._shrink_by_validate(free, floor=self.redundancy + 1)

    def prepare(self, size: int) -> PreparedJob:
        return prepare_coded_terasort(
            size,
            self.input if self.input is not None else self.data,
            self.redundancy,
            batches_per_subset=self.batches_per_subset,
            sampled_partitioner=self.sampled_partitioner,
            sample_size=self.sample_size,
            sample_seed=self.sample_seed,
            schedule=self.schedule,
            memory_budget=self.memory_budget,
            output_dir=self.output_dir,
            overlap=self.overlap,
        )


@dataclass(frozen=True)
class MapReduceSpec(JobSpec):
    """A general (Coded) MapReduce job (§II) over arbitrary file payloads.

    Attributes:
        job: the map/reduce law; must be a module-level class so the
            process backend can pickle it to pool workers (the bundled
            jobs in :mod:`repro.core.jobs` all qualify).
        files: the ``N`` input file payloads; ``N`` must be a positive
            multiple of ``C(K, r)`` (the batched placement).
        redundancy: ``r``; each file is mapped on ``r`` nodes.
        scheme: ``"uncoded"`` (designated-sender unicast shuffle) or
            ``"coded"`` (Algorithm 1/2 XOR multicast).
        schedule: coded-shuffle schedule, ``"serial"`` or ``"parallel"``;
            only meaningful with ``scheme="coded"``.
        memory_budget: per-worker cap (bytes) on the resident serialized
            intermediate store; overflow spills to per-job temp files.
            File payloads that are ``DataSource`` descriptors are always
            materialized worker-side, budget or not.
    """

    job: MapReduceJob
    files: Sequence[Any]
    redundancy: int = 1
    scheme: str = "uncoded"
    schedule: str = "serial"
    memory_budget: Optional[int] = None

    def validate(self, size: int) -> None:
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1, got {self.memory_budget}"
            )
        if self.scheme not in ("coded", "uncoded"):
            raise ValueError(
                f'scheme must be "coded" or "uncoded", got {self.scheme!r}'
            )
        check_schedule(self.schedule)
        # The coded shuffle multicasts within groups of r+1 <= K nodes;
        # the uncoded scheme only needs the placement, so r = K is legal.
        max_r = size - 1 if self.scheme == "coded" else size
        if not 1 <= self.redundancy <= max_r:
            raise ValueError(
                f"redundancy must be in [1, {max_r}] for "
                f"scheme={self.scheme!r} on K={size} nodes, "
                f"got {self.redundancy}"
            )
        base = binomial(size, self.redundancy)
        n = len(self.files)
        if n == 0 or n % base != 0:
            raise ValueError(
                f"number of files ({n}) must be a positive multiple of "
                f"C(K={size}, r={self.redundancy}) = {base}"
            )

    def prepare(self, size: int) -> PreparedJob:
        return prepare_mapreduce(
            size,
            self.job,
            list(self.files),
            redundancy=self.redundancy,
            coded=self.scheme == "coded",
            schedule=self.schedule,
            memory_budget=self.memory_budget,
        )


# ---------------------------------------------------------------------------
# Job futures.
# ---------------------------------------------------------------------------


@dataclass
class JobAttempt:
    """One execution attempt of a job (see :attr:`JobHandle.attempts`).

    Attributes:
        index: 0-based attempt number.
        duration: wall seconds this attempt ran on the pool.
        error: the typed failure that ended the attempt
            (:class:`~repro.runtime.errors.WorkerFailure` for the retried
            ones), or ``None`` for the successful attempt.
        replanned_k: when the sort service's ``shrink_to_fit`` policy
            re-planned this attempt onto fewer workers than the spec
            asked for, the K' it actually ran at; ``None`` otherwise.
    """

    index: int
    duration: float
    error: Optional[BaseException] = None
    replanned_k: Optional[int] = None


def retry_delay(attempt: int, backoff: float, cap: float = 30.0) -> float:
    """Seconds to sleep before re-submitting failed attempt ``attempt``.

    Bounded exponential: ``backoff * 2**attempt``, capped so a long retry
    budget cannot stall a driver for minutes.  Shared by the in-process
    :class:`Session` driver and the sort service's scheduler, so both
    retry with identical pacing.
    """
    return min(cap, backoff * (2 ** attempt))


class JobHandle:
    """Future for one submitted job.

    Completed by the session's driver thread; all methods are safe to
    call from any thread, any number of times.

    Attributes:
        attempts: per-attempt history, appended by the driver as each
            attempt ends.  One entry for a job that ran cleanly; a job
            that survived worker failures records every failed attempt
            (with its typed :class:`~repro.runtime.errors.WorkerFailure`)
            before the successful one.
    """

    def __init__(self, job_id: int, spec: JobSpec) -> None:
        self.job_id = job_id
        self.spec = spec
        self.attempts: List[JobAttempt] = []
        self._event = threading.Event()
        self._result: Any = None
        self._cluster_result: Optional[ClusterResult] = None
        self._error: Optional[BaseException] = None

    # -- completion (driver side) -----------------------------------------

    def _complete(
        self, result: Any, cluster_result: ClusterResult
    ) -> None:
        self._result = result
        self._cluster_result = cluster_result
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    # -- future API --------------------------------------------------------

    def done(self) -> bool:
        """True once the job has finished (successfully or not)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True if it did within ``timeout``."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's result (:class:`~repro.core.terasort.SortRun` for the
        sort specs, :class:`~repro.core.cmr.CMRRun` for MapReduce).

        Blocks until completion; re-raises the job's error if it failed,
        and :class:`TimeoutError` if ``timeout`` expires first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """The job's error (None on success); blocks like :meth:`result`."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        return self._error

    def cluster_result(
        self, timeout: Optional[float] = None
    ) -> ClusterResult:
        """This job's raw :class:`~repro.runtime.program.ClusterResult`.

        Per-job isolation: stage times and the traffic log cover exactly
        this job id's transfers, nothing from neighbouring jobs on the
        same session.
        """
        self.result(timeout)  # propagate errors / wait
        assert self._cluster_result is not None
        return self._cluster_result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if not self.done()
            else ("failed" if self._error is not None else "done")
        )
        return (
            f"JobHandle(job_id={self.job_id}, "
            f"spec={type(self.spec).__name__}, {state})"
        )


# ---------------------------------------------------------------------------
# The session.
# ---------------------------------------------------------------------------


class Session:
    """A standing cluster accepting many jobs (context manager).

    Args:
        cluster: a :class:`~repro.runtime.inproc.ThreadCluster` or
            :class:`~repro.runtime.process.ProcessCluster` (anything with
            ``size`` and ``create_pool()``).  The cluster object only
            carries configuration; the session owns the actual pool.
        max_retries: how many times a job that failed to *infrastructure*
            (a typed :class:`~repro.runtime.errors.WorkerFailure`: worker
            crash, silent worker past the failure timeout, comm cascade)
            is automatically re-submitted.  The pool re-forms between
            attempts (re-fork on the process backend, worker re-join on
            TCP) and re-runs produce byte-identical output because job
            specs are deterministic descriptors.  Program errors — the
            job's own code raising — are never retried.  Default 0: a
            failure fails the handle, matching the pre-retry behaviour.
        retry_backoff: base seconds slept before re-submitting; attempt
            ``n`` waits ``retry_backoff * 2**(n-1)`` (bounded exponential
            backoff so a flapping host isn't hammered).
        failure_timeout: override the cluster's mid-job worker liveness
            bound (seconds without a heartbeat before a worker is
            declared dead); ``None`` keeps the cluster's own setting.

    The worker pool starts lazily with the first job, jobs run strictly
    in submission order, and :meth:`close` (or leaving the ``with``
    block) drains every queued job before shutting the pool down.
    """

    def __init__(
        self,
        cluster,
        max_retries: int = 0,
        retry_backoff: float = 0.5,
        failure_timeout: Optional[float] = None,
    ) -> None:
        create_pool = getattr(cluster, "create_pool", None)
        if create_pool is None:
            raise TypeError(
                f"{type(cluster).__name__} does not support sessions "
                "(no create_pool())"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if failure_timeout is not None:
            if failure_timeout <= 0:
                raise ValueError(
                    f"failure_timeout must be > 0, got {failure_timeout}"
                )
            cluster.failure_timeout = failure_timeout
        self._cluster = cluster
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._pool = None
        self._queue: List[JobHandle] = []
        self._cond = threading.Condition()
        self._close_lock = threading.Lock()
        self._driver: Optional[threading.Thread] = None
        self._closed = False
        self._next_job_id = 0

    @property
    def size(self) -> int:
        """Number of worker nodes (the paper's ``K``)."""
        return self._cluster.size

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobHandle:
        """Queue one job; returns its :class:`JobHandle` future.

        The spec is validated against the cluster size *synchronously*
        (bad parameters raise :class:`ValueError` here, not on the
        handle); everything else — preparation, execution, result
        assembly — happens on the driver thread in submission order.

        Raises:
            ValueError: the spec cannot run on this cluster.
            RuntimeError: the session is closed.
        """
        if not isinstance(spec, JobSpec):
            raise TypeError(
                f"submit() takes a JobSpec, got {type(spec).__name__}"
            )
        spec.validate(self.size)
        with self._cond:
            if self._closed:
                raise RuntimeError("session is closed")
            handle = JobHandle(self._next_job_id, spec)
            self._next_job_id += 1
            self._queue.append(handle)
            if self._driver is None:
                self._driver = threading.Thread(
                    target=self._drive, daemon=True, name="session-driver"
                )
                self._driver.start()
            self._cond.notify_all()
        return handle

    def run(self, spec: JobSpec) -> Any:
        """Submit one job and block for its result (convenience)."""
        return self.submit(spec).result()

    # -- driver -------------------------------------------------------------

    def _drive(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                handle = self._queue.pop(0)
            try:
                prepared = handle.spec.prepare(self.size)
                if self._pool is None:
                    self._pool = self._cluster.create_pool()
                attempt = 0
                while True:
                    started = time.monotonic()
                    try:
                        cluster_result = self._pool.run_job(prepared)
                    except WorkerFailure as failure:
                        # Infrastructure died under the job.  Record the
                        # attempt and, within budget, re-submit: run_job
                        # re-forms the pool (re-fork / worker re-join) and
                        # the deterministic spec re-runs byte-identically.
                        handle.attempts.append(
                            JobAttempt(
                                index=attempt,
                                duration=time.monotonic() - started,
                                error=failure,
                            )
                        )
                        if attempt >= self._max_retries:
                            raise
                        time.sleep(retry_delay(attempt, self._retry_backoff))
                        attempt += 1
                        continue
                    handle.attempts.append(
                        JobAttempt(
                            index=attempt,
                            duration=time.monotonic() - started,
                        )
                    )
                    handle._complete(
                        prepared.finalize(cluster_result), cluster_result
                    )
                    break
            except BaseException as exc:  # noqa: BLE001 - fail the handle
                handle._fail(exc)

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain queued jobs, stop the driver, shut the pool down.

        Idempotent.  Jobs already submitted still run to completion (their
        handles complete normally); new submissions raise.
        """
        with self._cond:
            self._closed = True
            driver = self._driver
            self._cond.notify_all()
        # Every closer joins the (possibly already finished) driver, so a
        # concurrent second close() cannot reach the pool shutdown while
        # the first caller's driver still has a job in flight.
        if driver is not None:
            driver.join()
        with self._close_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"Session({type(self._cluster).__name__}(size={self.size}), "
            f"{state}, {self._next_job_id} jobs submitted)"
        )
