"""Admission control and fair-share scheduling for the sort service.

Pure logic, no mesh, no threads: the daemon calls :meth:`submit` /
:meth:`next_job` / :meth:`job_finished` under its own lock, and the unit
tests drive the same API directly.

Policy, in the order it is applied:

* **Admission** (:meth:`FairShareScheduler.submit`) is a hard gate with
  typed rejections — a bounded global queue depth (:class:`QueueFull`)
  and per-tenant quotas on queued jobs and queued bytes
  (:class:`QuotaExceeded`).  A rejected job costs the service nothing;
  the client gets the rejection kind over the control port and can back
  off or shrink the request.
* **Dispatch** (:meth:`FairShareScheduler.next_job`) picks, among queued
  jobs that *fit* (enough free workers, tenant below its concurrency
  quota), the one with the highest priority; ties break by fair share —
  the tenant with the least service (running + already-served jobs) wins,
  then FIFO.  Priority moves jobs ahead in the *queue* only: a running
  job is never preempted (its subset of workers is released only when it
  finishes or fails).
* **Backfill**: a job that fits never waits for a larger job that
  doesn't — if the head-of-queue job needs 6 free workers and only 3 are
  free, a 3-worker job behind it runs now.  Big jobs still drain-in
  eventually because finishing jobs free workers faster than the
  scheduler admits new large ones ahead of them.
* **Shrink-to-fit** (opt-in, ``shrink_to_fit=True``): when *no* queued
  job fits at full width and a queued job is wider than the *live mesh
  itself* (not merely wider than what's momentarily free — a busy mesh
  at full strength is a reason to wait, not to re-plan), a job that can
  re-plan to fewer workers (its :class:`QueuedJob` carries a ``shrink``
  callable, typically ``JobSpec.shrink_to``) runs now at the largest
  valid ``K' <= free_workers`` instead of waiting for the mesh to
  regrow — the elastic half of the rejoin story.  Full-width dispatch
  always wins over a shrink (the re-plan costs Map-phase parallelism),
  and the chosen width is reported on the returned job's
  ``planned_workers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "AdmissionError",
    "FairShareScheduler",
    "QueueFull",
    "QueuedJob",
    "QuotaExceeded",
    "TenantQuota",
]


class AdmissionError(RuntimeError):
    """Base class for typed admission rejections (never retried server-side).

    Attributes:
        kind: short machine-readable rejection kind, stable across the
            control-port wire (clients switch on it).
    """

    kind = "rejected"


class QueueFull(AdmissionError):
    """The service's global queue is at its bounded depth."""

    kind = "queue_full"


class QuotaExceeded(AdmissionError):
    """The submitting tenant is over one of its quotas."""

    kind = "quota_exceeded"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits.

    Attributes:
        max_concurrent: jobs this tenant may have *running* at once
            (queued jobs wait, they are not rejected by this limit).
        max_queued: jobs this tenant may have waiting in the queue.
        max_queued_bytes: total estimated input bytes this tenant may
            have queued (``None`` = unlimited).
    """

    max_concurrent: int = 4
    max_queued: int = 16
    max_queued_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be >= 0, got {self.max_queued}"
            )
        if self.max_queued_bytes is not None and self.max_queued_bytes < 0:
            raise ValueError(
                f"max_queued_bytes must be >= 0, got {self.max_queued_bytes}"
            )


@dataclass
class QueuedJob:
    """One queue entry; ``payload`` is opaque to the scheduler (the
    daemon stores its job record there).

    ``shrink`` (optional) makes the job elastic: called with the free
    worker count, it returns the largest valid smaller width or ``None``
    (see :meth:`repro.session.JobSpec.shrink_to`).  ``planned_workers``
    is set by :meth:`FairShareScheduler.next_job` to the width the job
    was actually dispatched at — equal to ``workers`` unless the
    shrink-to-fit policy re-planned it.
    """

    job_id: int
    tenant: str
    priority: int
    workers: int
    est_bytes: int
    payload: Any = None
    enqueued_at: float = 0.0
    shrink: Optional[Callable[[int], Optional[int]]] = None
    planned_workers: int = 0


class FairShareScheduler:
    """Priority + fair-share queue with typed admission control.

    Not thread-safe by itself — the owner serializes calls (the daemon
    holds one lock across its scheduler and pool state).

    Args:
        total_workers: mesh size; a job needing more can never run and
            is rejected outright at submit.
        max_queue_depth: global bound on queued jobs.
        default_quota: quota applied to tenants without an explicit one.
        quotas: per-tenant overrides, keyed by tenant name.
        shrink_to_fit: allow :meth:`next_job` to dispatch a shrinkable
            job at a smaller valid width when nothing fits at full
            width (see the module docstring).
    """

    def __init__(
        self,
        total_workers: int,
        max_queue_depth: int = 64,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        shrink_to_fit: bool = False,
    ) -> None:
        if total_workers < 1:
            raise ValueError(
                f"total_workers must be >= 1, got {total_workers}"
            )
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.total_workers = total_workers
        self.max_queue_depth = max_queue_depth
        self.shrink_to_fit = shrink_to_fit
        self._default_quota = default_quota or TenantQuota()
        self._quotas = dict(quotas or {})
        self._queue: List[QueuedJob] = []
        self._running: Dict[str, int] = {}  # tenant -> running job count
        self._served: Dict[str, int] = {}  # tenant -> jobs ever dispatched

    def set_total_workers(self, total_workers: int) -> None:
        """Elastic capacity update (mesh grew or a rank was recycled at a
        larger size); affects only future admissions."""
        if total_workers < 1:
            raise ValueError(
                f"total_workers must be >= 1, got {total_workers}"
            )
        self.total_workers = total_workers

    # -- introspection ------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    @property
    def queued(self) -> List[QueuedJob]:
        """The queue in arrival order (read-only view for stats)."""
        return list(self._queue)

    def queue_depth(self) -> int:
        return len(self._queue)

    def running_count(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return self._running.get(tenant, 0)
        return sum(self._running.values())

    # -- admission ----------------------------------------------------------

    def submit(self, job: QueuedJob) -> None:
        """Admit ``job`` to the queue or raise a typed rejection.

        Raises:
            QueueFull: the global queue is at ``max_queue_depth``.
            QuotaExceeded: the tenant is over ``max_queued`` or
                ``max_queued_bytes``, or the job wants more workers than
                the mesh has.
        """
        if job.workers < 1:
            raise QuotaExceeded(
                f"job {job.job_id} requests {job.workers} workers"
            )
        if job.workers > self.total_workers:
            raise QuotaExceeded(
                f"job {job.job_id} requests {job.workers} workers but the "
                f"mesh has {self.total_workers}"
            )
        if len(self._queue) >= self.max_queue_depth:
            raise QueueFull(
                f"queue depth {self.max_queue_depth} reached; retry later"
            )
        quota = self.quota_for(job.tenant)
        mine = [q for q in self._queue if q.tenant == job.tenant]
        if len(mine) >= quota.max_queued:
            raise QuotaExceeded(
                f"tenant {job.tenant!r} already has {len(mine)} jobs "
                f"queued (max_queued={quota.max_queued})"
            )
        if quota.max_queued_bytes is not None:
            queued_bytes = sum(q.est_bytes for q in mine)
            if queued_bytes + job.est_bytes > quota.max_queued_bytes:
                raise QuotaExceeded(
                    f"tenant {job.tenant!r} would have "
                    f"{queued_bytes + job.est_bytes} bytes queued "
                    f"(max_queued_bytes={quota.max_queued_bytes})"
                )
        self._queue.append(job)

    # -- dispatch -----------------------------------------------------------

    def next_job(
        self,
        free_workers: int,
        live_workers: Optional[int] = None,
    ) -> Optional[QueuedJob]:
        """Pick and remove the next runnable job, or ``None``.

        A job is runnable when ``free_workers`` covers its subset and
        its tenant is under ``max_concurrent``.  Among runnable jobs the
        winner minimizes ``(-priority, service, job_id)`` where
        ``service = running + served`` for the tenant — higher priority
        first, then the least-served tenant (fair share), then FIFO.
        The caller must pair every returned job with a later
        :meth:`job_finished`, and dispatch at ``planned_workers`` (which
        the shrink-to-fit pass may set below ``workers``; a full-width
        pick always wins over a shrink).

        ``live_workers`` is the mesh's current live membership.  The
        shrink-to-fit pass only considers jobs that could not run even
        on an *idle* live mesh (``workers > live_workers``): a job that
        merely has to wait for busy workers to free up keeps its full
        width — re-planning costs Map-phase parallelism and is reserved
        for genuine mesh shrinkage.  When omitted it defaults to
        ``free_workers`` (no membership information: anything that does
        not fit now is treated as shrinkable).
        """
        if live_workers is None:
            live_workers = free_workers
        best_idx = self._pick(free_workers, shrink=False)
        planned: Optional[int] = None
        if best_idx is None and self.shrink_to_fit and free_workers >= 1:
            best_idx = self._pick(
                free_workers, shrink=True, live_workers=live_workers
            )
            if best_idx is not None:
                shrink = self._queue[best_idx].shrink
                assert shrink is not None
                planned = shrink(free_workers)
        if best_idx is None:
            return None
        job = self._queue.pop(best_idx)
        job.planned_workers = job.workers if planned is None else planned
        self._running[job.tenant] = self._running.get(job.tenant, 0) + 1
        self._served[job.tenant] = self._served.get(job.tenant, 0) + 1
        return job

    def _pick(
        self,
        free_workers: int,
        shrink: bool,
        live_workers: int = 0,
    ) -> Optional[int]:
        """Queue index of the best runnable job (full-width pass, or the
        shrink-to-fit pass over jobs that can re-plan down)."""
        best_idx: Optional[int] = None
        best_key = None
        for idx, job in enumerate(self._queue):
            if shrink:
                if job.shrink is None or job.workers <= free_workers:
                    continue
                if job.workers <= live_workers:
                    continue  # fits the live mesh: wait, don't shrink
                shrunk = job.shrink(free_workers)
                if shrunk is None or shrunk > free_workers:
                    continue
            elif job.workers > free_workers:
                continue
            quota = self.quota_for(job.tenant)
            if self._running.get(job.tenant, 0) >= quota.max_concurrent:
                continue
            service = self._running.get(job.tenant, 0) + self._served.get(
                job.tenant, 0
            )
            key = (-job.priority, service, job.job_id)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        return best_idx

    def job_finished(self, tenant: str) -> None:
        """Release one running slot for ``tenant`` (success or failure)."""
        count = self._running.get(tenant, 0)
        if count <= 1:
            self._running.pop(tenant, None)
        else:
            self._running[tenant] = count - 1

    def requeue(self, job: QueuedJob) -> None:
        """Put a job back for retry, bypassing admission (it was already
        admitted once; rejecting a retry would drop accepted work).  The
        caller has already called :meth:`job_finished` for the failed
        attempt.  Its original ``job_id`` keeps its FIFO position ahead
        of younger submissions."""
        self._queue.append(job)
