"""Control-port wire protocol for the sort service.

One request/response pair per connection, length-prefixed frames from
:mod:`repro.runtime.transport` carrying pickled tuples — the same
framing the worker rendezvous uses, behind tiny helpers so the daemon
and client cannot disagree on tags.

Requests (client -> daemon)::

    ("submit", spec, {"tenant": str, "priority": int, "workers": int|None})
    ("status", job_id | None)       # one job, or all jobs
    ("result", job_id, timeout)     # long-poll for a job's outcome
    ("stats",)
    ("shutdown",)

Responses are ``("ok", payload)`` or ``("error", kind, message)`` —
errors travel as strings because the runtime's typed failures do not
round-trip through pickle (``WorkerFailure`` rewrites its ``args``).
Since protocol v2 a settled ``("result", ...)`` success is ``("ok",
payload, info)`` where ``info`` carries attempt metadata (the elastic
scheduler's ``replanned_k``, the attempt count).

Trust model matches the worker rendezvous: submissions pickle arbitrary
job specs, so expose the control port only to trusted clients on a
private network.
"""

from __future__ import annotations

import pickle
import socket
from typing import Any, Tuple

from repro.runtime.transport import TransportError, recv_frame, send_frame

__all__ = [
    "SERVICE_PROTOCOL_VERSION",
    "ServiceProtocolError",
    "estimate_spec_bytes",
    "recv_obj",
    "request",
    "send_obj",
]

#: Bumped on incompatible control-port changes; checked per frame.
#: v2: settled result responses grew a third attempt-metadata element.
SERVICE_PROTOCOL_VERSION = 2

#: Frame tag for service control messages — distinct from the worker
#: rendezvous tags so a client dialing the wrong port fails typed.
_TAG_SERVICE = 17


class ServiceProtocolError(TransportError):
    """A malformed or mis-versioned control-port frame."""


def send_obj(sock: socket.socket, obj: Any) -> None:
    payload = pickle.dumps(
        (SERVICE_PROTOCOL_VERSION, obj), pickle.HIGHEST_PROTOCOL
    )
    send_frame(sock, _TAG_SERVICE, payload)


def recv_obj(sock: socket.socket) -> Any:
    tag, payload = recv_frame(sock)
    if tag != _TAG_SERVICE:
        raise ServiceProtocolError(
            f"expected service frame tag {_TAG_SERVICE}, got {tag} "
            "(is this really the service control port?)"
        )
    try:
        version, obj = pickle.loads(bytes(payload))
    except Exception as exc:  # noqa: BLE001 - wire garbage, typed below
        raise ServiceProtocolError(f"undecodable service frame: {exc}") from exc
    if version != SERVICE_PROTOCOL_VERSION:
        raise ServiceProtocolError(
            f"service protocol mismatch: peer speaks {version}, "
            f"this side speaks {SERVICE_PROTOCOL_VERSION}"
        )
    return obj


def request(sock: socket.socket, obj: Any) -> Any:
    """One round-trip: send ``obj``, receive the response."""
    send_obj(sock, obj)
    return recv_obj(sock)


def estimate_spec_bytes(spec: Any) -> int:
    """Best-effort input size of a job spec, for quota accounting.

    The sort specs expose their input as either a resident
    ``RecordBatch`` (``data``) or a ``DataSource`` descriptor
    (``input``), both with ``nbytes``; MapReduce files are sized when
    they are bytes-like or descriptors.  Unknown shapes count as 0 —
    quotas on bytes are advisory capacity planning, not a security
    boundary (the depth quotas are the hard gate).
    """
    total = 0
    for attr in ("data", "input"):
        value = getattr(spec, attr, None)
        nbytes = getattr(value, "nbytes", None)
        if isinstance(nbytes, int):
            total += nbytes
    for payload in getattr(spec, "files", None) or ():
        nbytes = getattr(payload, "nbytes", None)
        if isinstance(nbytes, int):
            total += nbytes
        elif isinstance(payload, (bytes, bytearray, memoryview)):
            total += len(payload)
    return total
