"""Driver-side worker pool that runs jobs on per-worker *subsets*.

The third pool flavor.  ``_ProcessPool`` and ``_TcpPool`` run one job at
a time across all K workers and tear the mesh down on any failure; a
:class:`ServicePool` keeps one standing TCP mesh and runs **many jobs
concurrently on disjoint subsets** of it — a K'=4 job on workers
{0,1,2,3} while another runs on {4,...}.  The pieces that make that
safe live in the runtime layer (this module only orchestrates them):

* workers build a :class:`~repro.runtime.process.SubsetComm` per job, so
  programs run in logical ranks and outputs are byte-identical with a
  dedicated K'-mesh;
* per-job tag windows keep concurrent jobs' frames collision-free;
* workers are *resilient* (``resilient=True`` in the welcome config):
  a failed job is reported and its frames reclaimed, the worker lives
  on — so one job's failure never tears its neighbors down.

Failure handling is subset-scoped.  A worker death or silence fails only
the job whose subset contains it: the pool records a typed infra
failure, broadcasts ``("ctl", seq, ("abort", ...))`` to the job's
surviving members (their abort-polling receives bail out promptly), and
finishes the job with :func:`~repro.runtime.errors.job_failure` — a
retryable :class:`~repro.runtime.errors.WorkerFailure` unless a program
error dominates.  Dead workers shrink capacity (``workers_live``); the
daemon keeps scheduling on the survivors.

**Elastic rejoin.**  The pool keeps the cluster's rendezvous listener in
its select loop after the mesh forms: a replacement ``repro worker
--join`` completes the same versioned handshake (serialized on a join
lock so concurrent joiners see consistent rosters), is assigned a free
rank — a dead rank is recycled, or the mesh grows — and receives the
live peers' standing mesh-listener addresses to dial
(:func:`~repro.runtime.tcp._join_mesh`).  Every membership change
(death *or* join) bumps the pool's **membership epoch**; job frames
carry the epoch they were planned under, so a job dispatched before a
join can never alias a recycled rank: the worker-side
:class:`~repro.runtime.process.SubsetComm` refuses members whose link
epoch is newer than the job's, and the driver-side
:class:`~repro.runtime.monitor.JobMonitor` drops feeds from newer
incarnations.  Live workers learn about the new size via a
``("roster", info)`` control frame.

Threading: one reactor thread owns every control-connection *receive*;
all sends (dispatch, aborts, speculation directives) happen under the
pool lock from whichever thread triggers them.  Completion callbacks
fire on the reactor thread with **no pool lock held**, so a daemon
callback may re-enter ``submit`` (retry) without deadlock.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.runtime.errors import WorkerFailure, job_failure
from repro.runtime.monitor import JobMonitor
from repro.runtime.program import (
    ClusterResult,
    PreparedJob,
    assemble_cluster_result,
)
from repro.runtime.tcp import (
    _HELLO,
    _MAGIC,
    PROTOCOL_VERSION,
    _TAG_HELLO,
    TcpCluster,
    _bound_sends,
    _recv_msg,
    _select,
    _send_msg,
)
from repro.runtime.traffic import TrafficLog
from repro.runtime.transport import TransportError, recv_frame

__all__ = ["ServicePool", "SubsetJob"]


class SubsetJob:
    """One in-flight job on a subset of the mesh (pool-internal record).

    ``members`` is the sorted list of *global* worker ranks; the job's
    program sees logical ranks ``0..len(members)-1`` in the same order.
    ``done`` is set exactly once, after which either ``cluster_result``
    or ``error`` is populated.
    """

    def __init__(
        self,
        seq: int,
        members: List[int],
        prepared: PreparedJob,
        failure_timeout: float,
        timeout: float,
        epoch: int = 0,
    ) -> None:
        k = len(members)
        self.seq = seq
        self.members = members
        self.prepared = prepared
        #: Membership epoch the job was planned under; shipped in the
        #: job frame and enforced both worker-side (SubsetComm) and
        #: driver-side (JobMonitor.accepts) so the job never aliases a
        #: rank recycled by a later rejoin.
        self.epoch = epoch
        self.monitor = JobMonitor(
            k, failure_timeout, prepared.speculation, epoch=epoch
        )
        self.deadline = time.monotonic() + timeout
        self.grace_deadline: Optional[float] = None
        self.results: List[Any] = [None] * k
        self.times: List[Dict[str, float]] = [dict() for _ in range(k)]
        self.traffic = TrafficLog()
        self.stages: List[str] = []
        self.program_errors: List[str] = []
        self.infra_failures: List[Tuple[int, str, str]] = []
        self.pending: Set[int] = set(members)  # global ranks yet to report
        self.error: Optional[BaseException] = None
        self.cluster_result: Optional[ClusterResult] = None
        self.done = threading.Event()

    def logical(self, global_rank: int) -> int:
        return self.members.index(global_rank)

    @property
    def failed(self) -> bool:
        return bool(self.program_errors or self.infra_failures)


class ServicePool:
    """Standing TCP mesh running concurrent jobs on disjoint subsets.

    Args:
        cluster: the mesh spec; ``resilient_workers`` is forced on (the
            whole point is that workers outlive failed jobs).
        on_done: called as ``on_done(job)`` on the reactor thread, with
            no pool lock held, once per finished :class:`SubsetJob`.
        on_idle: called (same thread, no lock) whenever workers may have
            become free — the daemon's scheduler kicks on it.
        on_join: called as ``on_join(rank, epoch)`` from the join
            thread, with no pool lock held, after a replacement worker
            is fully integrated into the mesh.
    """

    #: After a job's first failure, wait this long (bounded by the
    #: cluster timeout) for the remaining members' reports before
    #: finishing it — a root-cause program error arriving late must
    #: still dominate the classification.
    _GRACE = 2.0

    def __init__(
        self,
        cluster: TcpCluster,
        on_done: Optional[Callable[[SubsetJob], None]] = None,
        on_idle: Optional[Callable[[], None]] = None,
        on_join: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        cluster.resilient_workers = True
        self._cluster = cluster
        self._pool = cluster.create_pool()
        self._on_done = on_done
        self._on_idle = on_idle
        self._on_join = on_join
        self._lock = threading.RLock()
        self._conns: Dict[int, socket.socket] = {}
        self._busy: Dict[int, int] = {}  # global rank -> job seq
        self._dead: Set[int] = set()
        self._jobs: Dict[int, SubsetJob] = {}
        self._callback_queue: List[SubsetJob] = []
        self._seq = 0
        self._closed = False
        # -- elastic membership bookkeeping --
        #: Bumped on every membership change, death *and* join.
        self._epoch = 0
        #: Epoch at which each rank's *current* incarnation joined
        #: (0 for the initial mesh).
        self._rank_epoch: Dict[int, int] = {}
        #: Advertised mesh-listener address per live rank, handed to
        #: joiners so they can dial the standing mesh.
        self._addrs: Dict[int, Tuple[str, int]] = {}
        #: Serializes join admissions: one joiner completes its whole
        #: handshake (through READY + integration) before the next
        #: starts, so every joiner's roster includes its predecessors.
        self._join_lock = threading.Lock()
        #: Total replacement workers integrated over the pool lifetime.
        self.workers_joined = 0
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._reactor: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Rendezvous K workers (blocking, bounded by ``connect_timeout``)
        and start the reactor."""
        self._pool._start()
        with self._lock:
            self._conns = dict(enumerate(self._pool._ctrl))
            # The reactor owns these sockets now; keep the inner pool
            # from double-closing them later.
            self._pool._ctrl = []
            self._rank_epoch = {g: 0 for g in self._conns}
            self._addrs = dict(enumerate(self._pool._roster))
        # The rendezvous listener joins the reactor's select loop so
        # replacement workers can rejoin mid-flight.
        self._cluster._listener.settimeout(None)
        self._reactor = threading.Thread(
            target=self._run, daemon=True, name="service-reactor"
        )
        self._reactor.start()

    def close(self) -> None:
        """Stop workers and the reactor (idempotent).  In-flight jobs
        fail with a typed shutdown error via their done events."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
            self._jobs = {}
            for job in jobs:
                job.error = WorkerFailure(
                    -1, "shutdown", "service pool closed with the job running"
                )
                job.done.set()
            for conn in self._conns.values():
                try:
                    _send_msg(conn, ("stop",))
                except (OSError, TransportError):
                    pass
                try:
                    conn.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            self._conns = {}
            self._busy = {}
        self._wake()
        reactor = self._reactor
        if reactor is not None and reactor is not threading.current_thread():
            reactor.join(timeout=10.0)
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    # -- introspection ------------------------------------------------------

    @property
    def size(self) -> int:
        return self._cluster.size

    def idle_workers(self) -> List[int]:
        """Global ranks currently live and not running a job (sorted)."""
        with self._lock:
            return sorted(set(self._conns) - set(self._busy))

    def live_workers(self) -> int:
        with self._lock:
            return len(self._conns)

    @property
    def membership_epoch(self) -> int:
        """Bumps on every membership change (worker death or rejoin)."""
        with self._lock:
            return self._epoch

    # -- dispatch -----------------------------------------------------------

    def submit(
        self, members: Sequence[int], prepared: PreparedJob
    ) -> SubsetJob:
        """Dispatch ``prepared`` onto the given idle global ranks.

        Returns the job record immediately; completion is observed via
        ``job.done`` / the ``on_done`` callback.  Raises
        :class:`ValueError` if a member is busy, dead, or unknown.
        """
        members = sorted(members)
        prepared.check_size(len(members))
        dead_at_dispatch: List[int] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("service pool is closed")
            for g in members:
                if g not in self._conns:
                    raise ValueError(f"worker {g} is not live")
                if g in self._busy:
                    raise ValueError(
                        f"worker {g} is busy with job {self._busy[g]}"
                    )
            seq = self._seq
            self._seq += 1
            job = SubsetJob(
                seq,
                members,
                prepared,
                self._cluster.failure_timeout,
                self._cluster.timeout,
                epoch=self._epoch,
            )
            self._jobs[seq] = job
            for logical, g in enumerate(members):
                # Busy before the send: a dispatch failure then routes
                # through _worker_died_locked with the job attributed.
                self._busy[g] = seq
                try:
                    _send_msg(
                        self._conns[g],
                        (
                            "job",
                            seq,
                            prepared.builder,
                            prepared.payloads[logical],
                            members,
                            job.epoch,
                        ),
                    )
                except (OSError, TransportError):
                    dead_at_dispatch.append(g)
            for g in dead_at_dispatch:
                self._worker_died_locked(g, "worker died at job dispatch")
        self._wake()
        return job

    # -- reactor ------------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except OSError:  # pragma: no cover - closing down
            pass

    def _run(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                socks = {conn: g for g, conn in self._conns.items()}
                jobs = list(self._jobs.values())
            timeout = 0.25
            now = time.monotonic()
            for job in jobs:
                remaining = job.deadline - now
                if job.grace_deadline is not None:
                    remaining = min(remaining, job.grace_deadline - now)
                timeout = min(timeout, job.monitor.poll_timeout(remaining))
            listener = self._cluster._listener
            wait_on = list(socks) + [self._wake_r]
            if listener.fileno() >= 0:
                wait_on.append(listener)
            readable = _select(wait_on, max(0.0, timeout))[0]
            for sock in readable:
                if sock is self._wake_r:
                    try:
                        sock.recv(4096)
                    except (BlockingIOError, OSError):
                        pass
                    continue
                if sock is listener:
                    # A replacement worker is dialing the standing
                    # rendezvous: hand the handshake to a join thread
                    # (it blocks on the joiner, the reactor must not).
                    try:
                        conn, _ = listener.accept()
                    except OSError:
                        continue  # listener closed under us
                    threading.Thread(
                        target=self._admit_join,
                        args=(conn,),
                        daemon=True,
                        name="service-join",
                    ).start()
                    continue
                g = socks[sock]
                try:
                    # settimeout is inside the guard: the conn may have
                    # been closed (death handling, shutdown) between the
                    # select snapshot and here.
                    sock.settimeout(min(30.0, self._cluster.timeout))
                    msg = _recv_msg(sock)
                except (OSError, TransportError) as exc:
                    with self._lock:
                        self._worker_died_locked(
                            g, f"worker died mid-service: {exc}"
                        )
                    continue
                finally:
                    try:
                        sock.settimeout(None)
                    except OSError:
                        pass
                self._handle(g, msg)
            self._tick()
            self._drain_callbacks()

    def _drain_callbacks(self) -> None:
        with self._lock:
            batch = self._callback_queue
            self._callback_queue = []
        for job in batch:
            if self._on_done is not None:
                self._on_done(job)
        if self._on_idle is not None:
            self._on_idle()

    def _handle(self, g: int, msg: Tuple) -> None:
        with self._lock:
            kind = msg[0]
            if kind == "hb":
                _, hb_rank, seq, stage = msg
                job = self._jobs.get(seq)
                if job is not None and hb_rank in job.pending:
                    job.monitor.heartbeat(
                        job.logical(hb_rank),
                        stage,
                        member_epoch=self._rank_epoch.get(g, 0),
                    )
                return
            if kind not in ("ok", "comm_error", "error"):
                return  # unknown frame; ignore (forward compatibility)
            seq = msg[2]
            # The report frees the worker even when its job is already
            # finished (deadline/grace force-finish leaves late members
            # busy until they actually report).
            if self._busy.get(g) == seq:
                del self._busy[g]
            job = self._jobs.get(seq)
            if job is None or g not in job.pending:
                return
            if not job.monitor.accepts(self._rank_epoch.get(g, 0)):
                return  # stale seq from a recycled rank's new incarnation
            lidx = job.logical(g)
            job.pending.discard(g)
            job.monitor.result(lidx)
            if kind == "ok":
                _, _, _, payload, sw_times, records, prog_stages = msg
                job.results[lidx] = payload
                job.times[lidx] = sw_times
                job.traffic.extend(records)
                if prog_stages and not job.stages:
                    job.stages = prog_stages
            elif kind == "comm_error":
                self._record_failure(
                    job,
                    lidx,
                    f"comm failure:\n{msg[3]}",
                    program_error=False,
                )
            else:
                self._record_failure(
                    job,
                    lidx,
                    f"worker {lidx} (global {g}):\n{msg[3]}",
                    program_error=True,
                )
            self._maybe_finish(job)

    def _record_failure(
        self, job: SubsetJob, lidx: int, detail: str, program_error: bool
    ) -> None:
        """Record one member failure; on the first, start the grace
        window and tell the job's survivors to abort."""
        first = not job.failed
        if program_error:
            job.program_errors.append(detail)
        else:
            job.infra_failures.append(
                (lidx, job.monitor.stage_of(lidx), detail)
            )
        if first:
            job.grace_deadline = time.monotonic() + min(
                self._GRACE, self._cluster.timeout
            )
            self._abort_job(job, f"member {lidx} failed")

    def _abort_job(self, job: SubsetJob, reason: str) -> None:
        """Best-effort abort directive to the job's surviving members —
        their :class:`~repro.runtime.process.SubsetComm` receives poll
        the flag and bail, so the subset unwinds in ~100ms instead of
        waiting out the receive timeout."""
        for g in list(job.pending):
            conn = self._conns.get(g)
            if conn is None:
                continue
            try:
                _send_msg(conn, ("ctl", job.seq, ("abort", reason)))
            except (OSError, TransportError):  # pragma: no cover
                pass

    def _worker_died_locked(self, g: int, cause: str) -> None:
        """Handle a worker's control-connection death (caller holds the
        lock).  Only the job whose subset contains ``g`` fails — its
        neighbors never hear about it (their mesh sockets to ``g`` would
        EOF too, but their jobs do not include ``g``, so nothing blocks
        on that source)."""
        if g in self._dead:
            return
        self._dead.add(g)
        self._epoch += 1  # membership changed: jobs planned before this
        # death must not alias a later reuse of rank g
        conn = self._conns.pop(g, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        seq = self._busy.pop(g, None)
        job = self._jobs.get(seq) if seq is not None else None
        if job is not None and g in job.pending:
            lidx = job.logical(g)
            job.pending.discard(g)
            job.monitor.result(lidx)
            self._record_failure(job, lidx, cause, program_error=False)
            self._maybe_finish(job)

    # -- elastic rejoin -----------------------------------------------------

    def _admit_join(self, conn: socket.socket) -> None:
        """Run one replacement worker's whole join handshake (thread).

        Serialized on the join lock: a joiner's roster must include
        every earlier joiner's mesh listener, so only one admission is
        in flight at a time.  Any handshake failure just drops the
        dialer; the standing mesh is never disturbed.
        """
        try:
            with self._join_lock:
                self._do_admit_join(conn)
        except (OSError, TransportError, struct.error, RuntimeError):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _do_admit_join(self, conn: socket.socket) -> None:
        cluster = self._cluster
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(cluster.handshake_timeout)
        tag, payload = recv_frame(conn)

        def reject(reason: str) -> None:
            try:
                _send_msg(conn, ("reject", reason))
            except (OSError, TransportError):  # pragma: no cover
                pass
            conn.close()

        try:
            magic, version, want = _HELLO.unpack(bytes(payload))
        except struct.error:
            reject("malformed hello frame")
            return
        if tag != _TAG_HELLO or magic != _MAGIC:
            reject("not a codedterasort worker hello")
            return
        if version != PROTOCOL_VERSION:
            reject(
                f"protocol version mismatch: worker speaks {version}, "
                f"coordinator speaks {PROTOCOL_VERSION}"
            )
            return
        with self._lock:
            if self._closed:
                reject("service pool is closed")
                return
            if want >= 0 and want in self._conns:
                reject(
                    f"duplicate rank: {want} is live at membership epoch "
                    f"{self._rank_epoch.get(want, 0)}"
                )
                return
            if want >= 0 and want not in self._dead and want > self.size:
                reject(
                    f"rank {want} out of range for a size-{self.size} mesh"
                )
                return
            if want >= 0:
                rank = want
            elif self._dead:
                rank = min(self._dead)  # recycle the lowest dead rank
            else:
                rank = self.size  # grow the mesh by one
            self._epoch += 1
            epoch = self._epoch
            if rank >= self.size:
                self._cluster.size = rank + 1
                self._pool.size = rank + 1
            peers = {g: self._addrs[g] for g in self._conns}
            cfg = self._pool.welcome_config(rank, epoch=epoch)
        _send_msg(conn, ("welcome", cfg))
        msg = _recv_msg(conn)
        if msg[0] != "listening":
            raise RuntimeError(f"joiner sent {msg[0]!r}, expected listening")
        addr = tuple(msg[1])
        # The joiner now dials every live peer's standing mesh listener;
        # worker-side join-acceptor threads splice the links in.
        _send_msg(
            conn,
            ("roster", {"peers": peers, "epoch": epoch, "size": cfg["size"]}),
        )
        msg = _recv_msg(conn)
        if msg[0] != "ready":
            raise RuntimeError(f"joiner sent {msg[0]!r}, expected ready")
        conn.settimeout(None)
        _bound_sends(conn, cluster.timeout)
        with self._lock:
            if self._closed:
                conn.close()
                return
            self._conns[rank] = conn
            self._dead.discard(rank)
            self._addrs[rank] = addr
            self._rank_epoch[rank] = epoch
            self.workers_joined += 1
            roster_update = {"size": self.size, "epoch": epoch, "joined": rank}
            others = [
                c for g, c in self._conns.items() if g != rank
            ]
        # Announce to live workers (they grow comm.size if needed) with
        # no lock held — a wedged worker must not stall membership.
        for other in others:
            try:
                _send_msg(other, ("roster", roster_update))
            except (OSError, TransportError):  # pragma: no cover
                pass
        if self._on_join is not None:
            self._on_join(rank, epoch)
        self._wake()  # reactor re-snapshots conns; on_idle kicks scheduler

    def _tick(self) -> None:
        now = time.monotonic()
        with self._lock:
            for job in list(self._jobs.values()):
                # Silent-worker detection (heartbeats are per-job).
                if self._cluster.heartbeat_interval:
                    pending_logical = [job.logical(g) for g in job.pending]
                    try:
                        job.monitor.check_liveness(pending_logical)
                    except WorkerFailure as failure:
                        self._worker_died_locked(
                            job.members[failure.rank],
                            f"no heartbeat: {failure.cause}",
                        )
                        if job.seq not in self._jobs:
                            continue
                for straggler, backup in (
                    job.monitor.speculation_directives()
                ):
                    for g in job.pending:
                        conn = self._conns.get(g)
                        if conn is None:
                            continue
                        try:
                            _send_msg(
                                conn,
                                (
                                    "ctl",
                                    job.seq,
                                    ("speculate", straggler, backup),
                                ),
                            )
                        except (OSError, TransportError):  # pragma: no cover
                            pass
                if job.pending and now >= job.deadline:
                    if not job.failed:
                        job.infra_failures.append((
                            -1,
                            "unknown",
                            f"job timed out after {self._cluster.timeout}s "
                            f"(members {sorted(job.pending)} pending)",
                        ))
                        self._abort_job(job, "job deadline expired")
                    self._maybe_finish(job, force=True)
                elif (
                    job.grace_deadline is not None
                    and now >= job.grace_deadline
                ):
                    self._maybe_finish(job, force=True)

    def _maybe_finish(self, job: SubsetJob, force: bool = False) -> None:
        if job.seq not in self._jobs:
            return
        if job.pending and not force:
            return
        del self._jobs[job.seq]
        # Members that never reported (force-finish) stay busy until
        # their abort/timeout report arrives and frees them in _handle.
        if job.failed:
            job.error = job_failure(
                "SortService", job.program_errors, job.infra_failures
            )
        else:
            job.cluster_result = assemble_cluster_result(
                job.results, job.times, job.traffic, job.stages
            )
        job.done.set()
        self._callback_queue.append(job)
