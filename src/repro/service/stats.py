"""Service metrics: per-tenant counters and queue-wait percentiles.

The daemon keeps one :class:`StatsRecorder` and snapshots it into a
:class:`ServiceStats` on demand — for ``repro status --json``, the
control port's ``("stats",)`` request, and tests.  Snapshots are plain
dataclasses of plain types, so they pickle across the control port and
``to_dict`` round-trips through JSON.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["ServiceStats", "StatsRecorder", "TenantStats"]

#: Queue-wait samples kept per service (a bounded reservoir of the most
#: recent waits; p50/p95 of "recent" is what an operator watches).
_WAIT_WINDOW = 1024


def _percentile(samples: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of ``samples`` (``None`` when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class TenantStats:
    """One tenant's counters (all monotone except the gauges)."""

    jobs_queued: int = 0  # gauge: waiting right now
    jobs_running: int = 0  # gauge: running right now
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_rejected: int = 0
    bytes_sorted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class ServiceStats:
    """A point-in-time snapshot of the whole service.

    Attributes:
        workers: mesh size the service was configured with.
        workers_live: workers currently usable — shrinks on deaths and
            *recovers* as replacement workers rejoin the elastic pool.
        workers_joined: lifetime count of replacement workers integrated
            into the standing mesh.
        membership_epoch: bumps on every membership change (death or
            rejoin); jobs are fenced to the epoch they were planned in.
        jobs_queued / jobs_running: current gauges, summed over tenants.
        jobs_done / jobs_failed / jobs_rejected: lifetime counters.
        queue_wait_p50 / queue_wait_p95: seconds from admission to
            dispatch over the recent-wait window (``None`` until the
            first dispatch).
        tenants: per-tenant breakdown, keyed by tenant name.
    """

    workers: int = 0
    workers_live: int = 0
    workers_joined: int = 0
    membership_epoch: int = 0
    jobs_queued: int = 0
    jobs_running: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_rejected: int = 0
    queue_wait_p50: Optional[float] = None
    queue_wait_p95: Optional[float] = None
    tenants: Dict[str, TenantStats] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = dict(self.__dict__)
        d["tenants"] = {
            name: stats.to_dict() for name, stats in self.tenants.items()
        }
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ServiceStats":
        d = dict(d)
        d["tenants"] = {
            name: TenantStats(**stats)
            for name, stats in d.get("tenants", {}).items()
        }
        return cls(**d)


class StatsRecorder:
    """Thread-safe accumulator behind :class:`ServiceStats` snapshots."""

    def __init__(self, workers: int) -> None:
        self._lock = threading.Lock()
        self._workers = workers
        self._tenants: Dict[str, TenantStats] = {}
        self._waits: Deque[float] = deque(maxlen=_WAIT_WINDOW)

    def _tenant(self, tenant: str) -> TenantStats:
        return self._tenants.setdefault(tenant, TenantStats())

    def rejected(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).jobs_rejected += 1

    def queued(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).jobs_queued += 1

    def dispatched(self, tenant: str, queue_wait: float) -> None:
        with self._lock:
            t = self._tenant(tenant)
            t.jobs_queued -= 1
            t.jobs_running += 1
            self._waits.append(queue_wait)

    def requeued(self, tenant: str) -> None:
        """A running job went back to the queue for retry."""
        with self._lock:
            t = self._tenant(tenant)
            t.jobs_running -= 1
            t.jobs_queued += 1

    def finished(
        self, tenant: str, ok: bool, bytes_sorted: int = 0
    ) -> None:
        with self._lock:
            t = self._tenant(tenant)
            t.jobs_running -= 1
            if ok:
                t.jobs_done += 1
                t.bytes_sorted += bytes_sorted
            else:
                t.jobs_failed += 1

    def snapshot(
        self,
        workers_live: Optional[int] = None,
        workers_joined: int = 0,
        membership_epoch: int = 0,
    ) -> ServiceStats:
        with self._lock:
            waits = list(self._waits)
            tenants = {
                name: TenantStats(**t.__dict__)
                for name, t in self._tenants.items()
            }
        return ServiceStats(
            workers=self._workers,
            workers_live=(
                self._workers if workers_live is None else workers_live
            ),
            workers_joined=workers_joined,
            membership_epoch=membership_epoch,
            jobs_queued=sum(t.jobs_queued for t in tenants.values()),
            jobs_running=sum(t.jobs_running for t in tenants.values()),
            jobs_done=sum(t.jobs_done for t in tenants.values()),
            jobs_failed=sum(t.jobs_failed for t in tenants.values()),
            jobs_rejected=sum(t.jobs_rejected for t in tenants.values()),
            queue_wait_p50=_percentile(waits, 0.50),
            queue_wait_p95=_percentile(waits, 0.95),
            tenants=tenants,
        )
