"""Multi-tenant sort service: one standing mesh, many concurrent jobs.

The :class:`~repro.session.Session` API is strict FIFO — one job owns
the whole pool at a time.  This package is the long-running alternative
the ROADMAP's "heavy traffic" north star asks for:

* :mod:`repro.service.daemon` — :class:`SortService`, the ``repro
  serve`` daemon: control port, job registry, retry policy;
* :mod:`repro.service.scheduler` — admission control (typed
  rejections, per-tenant quotas) and priority/fair-share dispatch,
  as pure unit-testable logic;
* :mod:`repro.service.pool` — :class:`ServicePool`, which runs each
  job on a per-job *subset* of the worker mesh so jobs overlap, with
  subset-scoped failure handling;
* :mod:`repro.service.client` — :class:`ServiceClient` /
  :class:`ServiceJobHandle`, the ``repro submit`` / ``repro status``
  side;
* :mod:`repro.service.stats` — per-tenant metrics snapshots;
* :mod:`repro.service.protocol` — the control-port wire format.

Per-job worker sizing is what makes the fundamental tradeoff actionable
in a shared cluster: each job picks its own K (and, for coded sorts, r)
and the scheduler packs the subsets onto one mesh.
"""

from repro.service.client import (
    ServiceClient,
    ServiceJobHandle,
    ServiceRejected,
)
from repro.service.daemon import ServiceJob, SortService
from repro.service.pool import ServicePool, SubsetJob
from repro.service.scheduler import (
    AdmissionError,
    FairShareScheduler,
    QueueFull,
    QueuedJob,
    QuotaExceeded,
    TenantQuota,
)
from repro.service.stats import ServiceStats, TenantStats

__all__ = [
    "AdmissionError",
    "FairShareScheduler",
    "QueueFull",
    "QueuedJob",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceJob",
    "ServiceJobHandle",
    "ServicePool",
    "ServiceRejected",
    "ServiceStats",
    "SortService",
    "SubsetJob",
    "TenantQuota",
    "TenantStats",
]
