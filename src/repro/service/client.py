"""Thin client for the sort service: futures over the control port.

:class:`ServiceClient` opens **one connection per request** (the control
protocol is strictly request/response), so a single client object is
safe to share across threads — three threads can submit and wait
concurrently with no shared socket state.  :class:`ServiceJobHandle`
duck-types the blocking half of :class:`~repro.session.JobHandle`
(``done`` / ``wait`` / ``result`` / ``exception``), so driver code
written against a local ``Session`` ports to the service by swapping
``Session(...)`` for ``ServiceClient(addr)`` — both are context
managers with the same ``submit(spec) -> handle`` surface::

    with ServiceClient(addr) as client:
        run = client.submit(TeraSortSpec(input=src)).result()

A handle settled through an elastic shrink-to-fit re-plan reports the
width it actually ran at via :attr:`ServiceJobHandle.replanned_k`.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional

from repro.runtime.errors import RuntimeTimeoutError, WorkerFailure
from repro.runtime.tcp import parse_address
from repro.service.protocol import request
from repro.service.stats import ServiceStats
from repro.session import JobSpec

__all__ = ["ServiceClient", "ServiceJobHandle", "ServiceRejected"]


class ServiceRejected(RuntimeError):
    """The service rejected a submission (admission control).

    Attributes:
        kind: the machine-readable rejection kind from the daemon
            (``"queue_full"``, ``"quota_exceeded"``, ...).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


def _rebuild_failure(kind: str, message: str) -> BaseException:
    """A job failure arrives as ``(kind, message)`` strings; rebuild the
    closest typed exception so client-side ``except WorkerFailure``
    sites keep working."""
    if kind == "worker_failure":
        failure = WorkerFailure(-1, "service", message)
        failure.args = (message,)
        return failure
    if kind == "timeout":
        return RuntimeTimeoutError(message)
    return RuntimeError(message)


class ServiceClient:
    """Client for one :class:`~repro.service.daemon.SortService`.

    Args:
        address: the daemon's control address (``tcp://HOST:PORT``).
        connect_timeout: per-request dial + I/O bound.
    """

    def __init__(
        self, address: str, connect_timeout: float = 30.0
    ) -> None:
        self._host, self._port = parse_address(address)
        self._connect_timeout = connect_timeout
        self._closed = False

    # -- lifecycle (context-manager parity with Session) --------------------

    def close(self) -> None:
        """Mark the client closed; later requests raise.  There is no
        standing connection to tear down (one connection per request),
        so this is purely a use-after-close guard.  Idempotent."""
        self._closed = True

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, req: Any, timeout: Optional[float] = None) -> Any:
        if self._closed:
            raise RuntimeError("service client is closed")
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if timeout is not None:
                sock.settimeout(timeout)
            resp = request(sock, req)
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        if (
            isinstance(resp, tuple)
            and resp
            and resp[0] == "error"
        ):
            raise _rebuild_failure(resp[1], resp[2])
        return resp

    # -- API ----------------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        tenant: str = "default",
        priority: int = 0,
        workers: Optional[int] = None,
    ) -> "ServiceJobHandle":
        """Submit one job; returns a handle immediately.

        Raises:
            ServiceRejected: admission control turned the job away
                (``.kind`` says why — back off or shrink the request).
        """
        resp = self._request(
            (
                "submit",
                spec,
                {"tenant": tenant, "priority": priority, "workers": workers},
            )
        )
        if resp[0] == "rejected":
            raise ServiceRejected(resp[1], resp[2])
        assert resp[0] == "ok", resp
        return ServiceJobHandle(self, resp[1], spec)

    def status(
        self, job_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Status rows for one job (or all), as plain dicts."""
        resp = self._request(("status", job_id))
        assert resp[0] == "ok", resp
        return resp[1]

    def stats(self) -> ServiceStats:
        resp = self._request(("stats",))
        assert resp[0] == "ok", resp
        return resp[1]

    def shutdown(self) -> None:
        """Ask the daemon to shut down (it responds, then closes)."""
        self._request(("shutdown",))


class ServiceJobHandle:
    """Future for one service job; API-compatible with the blocking half
    of :class:`~repro.session.JobHandle`.

    Attributes:
        replanned_k: once settled, the smaller worker count the
            scheduler's shrink-to-fit policy re-planned the final
            attempt onto, or ``None`` when it ran at the requested
            width.
        attempts: once settled, how many attempts the job took.
    """

    def __init__(
        self, client: ServiceClient, job_id: int, spec: JobSpec
    ) -> None:
        self._client = client
        self.job_id = job_id
        self.spec = spec
        self.replanned_k: Optional[int] = None
        self.attempts: Optional[int] = None
        self._outcome: Optional[Any] = None
        self._error: Optional[BaseException] = None
        self._settled = False

    def _poll(self, timeout: float) -> bool:
        """One long-poll round trip; True once the job settled."""
        if self._settled:
            return True
        resp = self._client._request(
            ("result", self.job_id, timeout),
            timeout=timeout + 60.0,
        )
        if resp[0] == "pending":
            return False
        if resp[0] == "ok":
            self._outcome = resp[1]
            info = resp[2] if len(resp) > 2 else {}
            self.replanned_k = info.get("replanned_k")
            self.attempts = info.get("attempts")
        else:
            assert resp[0] == "failed", resp
            self._error = _rebuild_failure(resp[1], resp[2])
        self._settled = True
        return True

    def done(self) -> bool:
        return self._poll(0.0)

    def wait(self, timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                25.0
                if deadline is None
                else min(25.0, deadline - time.monotonic())
            )
            if remaining < 0:
                return False
            if self._poll(max(0.0, remaining)):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self.wait(timeout):
            raise TimeoutError(
                f"service job {self.job_id} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._outcome

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        if not self.wait(timeout):
            raise TimeoutError(
                f"service job {self.job_id} not done within {timeout}s"
            )
        return self._error
