"""The ``repro serve`` daemon: a multi-tenant sort service on one mesh.

A :class:`SortService` owns a standing :class:`~repro.runtime.tcp
.TcpCluster` worker mesh (via :class:`~repro.service.pool.ServicePool`)
and a TCP *control port* where many clients submit serialized
:class:`~repro.session.JobSpec` jobs concurrently.  Between the two sits
the :class:`~repro.service.scheduler.FairShareScheduler`: admission
control with typed rejections at submit, priority + fair-share ordering
at dispatch, and per-job worker subsets so a K'=4 job and a K''=4 job
overlap on one 8-worker mesh.

Job lifecycle (all transitions under the service lock)::

    submit -> queued -> running -> done
                 ^          |  \\-> failed       (program error, timeout)
                 |          v
                 +------ retrying               (WorkerFailure, budget left)

Retries mirror :class:`~repro.session.Session`: only typed
:class:`~repro.runtime.errors.WorkerFailure` is retried, with the same
:func:`~repro.session.retry_delay` pacing, and a retry is a fresh pool
sequence number — its frames can never alias the failed attempt's.

The daemon is deliberately a thin composition: scheduling policy lives
in ``scheduler.py`` (pure logic, unit-testable), subset execution and
failure scoping in ``pool.py``, and the wire protocol in
``protocol.py``.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.errors import RuntimeTimeoutError, WorkerFailure
from repro.runtime.program import PreparedJob
from repro.runtime.tcp import TcpCluster, parse_address
from repro.service.pool import ServicePool, SubsetJob
from repro.service.protocol import estimate_spec_bytes, recv_obj, send_obj
from repro.service.scheduler import (
    AdmissionError,
    FairShareScheduler,
    QueuedJob,
    TenantQuota,
)
from repro.service.stats import ServiceStats, StatsRecorder
from repro.session import JobAttempt, JobSpec, retry_delay

__all__ = ["ServiceJob", "SortService"]


@dataclass
class ServiceJob:
    """Daemon-side record of one submitted job (the unit ``status``
    reports on).  ``error`` is a ``(kind, message)`` string pair — the
    runtime's typed failures do not survive pickling, and the control
    port should ship data, not exception objects."""

    job_id: int
    tenant: str
    priority: int
    spec: JobSpec
    workers: int
    est_bytes: int
    state: str = "queued"  # queued | running | done | failed
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    workers_used: List[int] = field(default_factory=list)
    attempts: List[JobAttempt] = field(default_factory=list)
    attempt: int = 0
    #: Set while the current attempt runs at a shrink-to-fit width K'
    #: below the requested ``workers``; recorded on the attempt.
    replanned_k: Optional[int] = None
    error: Optional[Tuple[str, str]] = None
    result: Any = None
    prepared: Optional[PreparedJob] = None
    enqueued_mono: float = 0.0
    done: threading.Event = field(default_factory=threading.Event)

    def describe(self) -> Dict[str, Any]:
        """Picklable, JSON-able status row."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "spec": type(self.spec).__name__,
            "workers": self.workers,
            "workers_used": list(self.workers_used),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": len(self.attempts),
            "replanned_k": self.replanned_k,
            "error": list(self.error) if self.error else None,
        }


def _error_kind(exc: BaseException) -> str:
    if isinstance(exc, WorkerFailure):
        return "worker_failure"
    if isinstance(exc, RuntimeTimeoutError):
        return "timeout"
    return "error"


class SortService:
    """The daemon: control port + scheduler + subset pool.

    Constructing the service binds the control listener immediately (so
    :attr:`control_address` is printable before workers join);
    :meth:`start` rendezvouses the mesh (blocking until K workers have
    dialed in) and starts the accept and dispatch threads.

    Args:
        cluster: mesh spec; its ``size`` is the scheduler's capacity.
        control: ``tcp://HOST:PORT`` for the control port (port 0 picks
            an ephemeral one).
        max_queue_depth / default_quota / quotas: admission policy, see
            :class:`~repro.service.scheduler.FairShareScheduler`.
        max_retries: WorkerFailure retry budget per job.
        retry_backoff: base of the shared bounded-exponential pacing.
        shrink_to_fit: let the scheduler re-plan a queued shrinkable job
            onto fewer free workers when nothing fits at full width (see
            :class:`~repro.service.scheduler.FairShareScheduler`); the
            re-plan is recorded as ``replanned_k`` on the job's attempt
            metadata and status rows.
    """

    #: Cap one ``("result", ...)`` long-poll; clients re-poll.
    _RESULT_POLL_CAP = 30.0

    def __init__(
        self,
        cluster: TcpCluster,
        control: str = "tcp://127.0.0.1:0",
        max_queue_depth: int = 64,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        max_retries: int = 1,
        retry_backoff: float = 0.1,
        shrink_to_fit: bool = False,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._cluster = cluster
        self._kick = threading.Event()
        self._pool = ServicePool(
            cluster,
            on_done=self._job_done,
            on_idle=self._kick.set,
            on_join=self._worker_joined,
        )
        self._scheduler = FairShareScheduler(
            cluster.size,
            max_queue_depth,
            default_quota,
            quotas,
            shrink_to_fit=shrink_to_fit,
        )
        self._stats = StatsRecorder(cluster.size)
        self._jobs: Dict[int, ServiceJob] = {}
        self._inflight: Dict[int, ServiceJob] = {}  # pool seq -> record
        self._next_id = 1
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._lock = threading.Lock()
        self._closed = False
        self._threads: List[threading.Thread] = []
        host, port = parse_address(control)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            self._listener.close()
            raise RuntimeError(
                f"cannot bind control port {host}:{port}: {exc}"
            ) from exc
        self._listener.listen(64)
        self._control_host = host
        self._control_port = self._listener.getsockname()[1]

    @property
    def control_address(self) -> str:
        return f"tcp://{self._control_host}:{self._control_port}"

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Rendezvous K workers (blocking, bounded by the cluster's
        ``connect_timeout``), then serve clients until :meth:`close`."""
        self._pool.start()
        for name, target in (
            ("service-accept", self._accept_loop),
            ("service-dispatch", self._dispatch_loop),
        ):
            t = threading.Thread(target=target, daemon=True, name=name)
            t.start()
            self._threads.append(t)

    def close(self) -> None:
        """Stop accepting, fail queued and running jobs, stop workers.
        Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queued = [
                q.payload for q in self._scheduler.queued
            ]
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        self._kick.set()
        for record in queued:
            with self._lock:
                if record.state == "queued":
                    record.state = "failed"
                    record.error = ("shutdown", "service shut down")
                    record.finished_at = time.time()
                    self._stats.finished(record.tenant, ok=False)
                    record.done.set()
        self._pool.close()
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=10.0)

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- stats / status -----------------------------------------------------

    def stats(self) -> ServiceStats:
        return self._stats.snapshot(
            workers_live=self._pool.live_workers(),
            workers_joined=self._pool.workers_joined,
            membership_epoch=self._pool.membership_epoch,
        )

    def _worker_joined(self, rank: int, epoch: int) -> None:
        """Pool callback: a replacement worker is live at ``rank``."""
        with self._lock:
            self._scheduler.set_total_workers(self._pool.size)
        self._kick.set()

    def describe_jobs(
        self, job_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        with self._lock:
            if job_id is not None:
                record = self._jobs.get(job_id)
                return [record.describe()] if record is not None else []
            return [
                self._jobs[jid].describe() for jid in sorted(self._jobs)
            ]

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        tenant: str = "default",
        priority: int = 0,
        workers: Optional[int] = None,
    ) -> ServiceJob:
        """Admit one job (or raise a typed
        :class:`~repro.service.scheduler.AdmissionError`).  Shared by
        the control port and in-process callers (tests, benchmarks)."""
        k = self._cluster.size if workers is None else int(workers)
        try:
            spec.validate(k)
        except ValueError:
            with self._lock:
                self._stats.rejected(tenant)
            raise
        est_bytes = estimate_spec_bytes(spec)
        with self._lock:
            if self._closed:
                raise RuntimeError("service is shut down")
            record = ServiceJob(
                job_id=self._next_id,
                tenant=tenant,
                priority=int(priority),
                spec=spec,
                workers=k,
                est_bytes=est_bytes,
                submitted_at=time.time(),
                enqueued_mono=time.monotonic(),
            )
            try:
                self._scheduler.submit(
                    QueuedJob(
                        job_id=record.job_id,
                        tenant=tenant,
                        priority=record.priority,
                        workers=k,
                        est_bytes=est_bytes,
                        payload=record,
                        enqueued_at=record.enqueued_mono,
                        shrink=spec.shrink_to,
                    )
                )
            except AdmissionError:
                self._stats.rejected(tenant)
                raise
            self._next_id += 1
            self._jobs[record.job_id] = record
            self._stats.queued(tenant)
        self._kick.set()
        return record

    # -- dispatch loop ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            self._kick.wait(timeout=0.2)
            self._kick.clear()
            if self._closed:
                return
            while self._dispatch_one():
                pass

    def _dispatch_one(self) -> bool:
        """Dispatch at most one queued job; True if one was started."""
        with self._lock:
            if self._closed:
                return False
            idle = self._pool.idle_workers()
            queued = self._scheduler.next_job(
                len(idle), live_workers=self._pool.live_workers()
            )
            if queued is None:
                return False
            record: ServiceJob = queued.payload
            planned = queued.planned_workers or record.workers
            members = idle[:planned]
            record.state = "running"
            record.started_at = time.time()
            record.workers_used = members
            record.replanned_k = planned if planned != record.workers else None
            self._stats.dispatched(
                record.tenant, time.monotonic() - queued.enqueued_at
            )
            try:
                # Re-prepare when this attempt's width differs from the
                # cached plan (first dispatch, or a shrink-to-fit
                # re-plan / full-width retry after one).
                if (
                    record.prepared is None
                    or len(record.prepared.payloads) != planned
                ):
                    record.prepared = record.spec.prepare(planned)
                subset = self._pool.submit(members, record.prepared)
            except BaseException as exc:  # noqa: BLE001 - fail the record
                self._scheduler.job_finished(record.tenant)
                record.state = "failed"
                record.error = (_error_kind(exc), str(exc))
                record.finished_at = time.time()
                self._stats.finished(record.tenant, ok=False)
                record.done.set()
                return True
            self._inflight[subset.seq] = record
        return True

    # -- completion (reactor thread, no pool lock held) ---------------------

    def _job_done(self, subset: SubsetJob) -> None:
        retry_in: Optional[float] = None
        with self._lock:
            record = self._inflight.pop(subset.seq, None)
            if record is None:
                return
            self._scheduler.job_finished(record.tenant)
            started = record.started_at or time.time()
            duration = time.time() - started
            if subset.error is None:
                try:
                    assert record.prepared is not None
                    record.result = record.prepared.finalize(
                        subset.cluster_result
                    )
                except BaseException as exc:  # noqa: BLE001
                    self._fail_locked(record, exc, duration)
                else:
                    record.attempts.append(
                        JobAttempt(
                            index=record.attempt,
                            duration=duration,
                            replanned_k=record.replanned_k,
                        )
                    )
                    record.state = "done"
                    record.finished_at = time.time()
                    self._stats.finished(
                        record.tenant, ok=True, bytes_sorted=record.est_bytes
                    )
                    record.done.set()
            elif (
                isinstance(subset.error, WorkerFailure)
                and not isinstance(subset.error, RuntimeTimeoutError)
                and record.attempt < self._max_retries
                and self._pool.live_workers() >= record.workers
                and not self._closed
            ):
                record.attempts.append(
                    JobAttempt(
                        index=record.attempt,
                        duration=duration,
                        error=subset.error,
                        replanned_k=record.replanned_k,
                    )
                )
                retry_in = retry_delay(record.attempt, self._retry_backoff)
                record.attempt += 1
                record.state = "queued"
                record.enqueued_mono = time.monotonic()
                self._stats.requeued(record.tenant)
            else:
                self._fail_locked(record, subset.error, duration)
        if retry_in is not None:
            # Off-thread backoff (never sleep on the reactor): requeue
            # bypasses admission — the job was already admitted once.
            timer = threading.Timer(retry_in, self._requeue, args=(record,))
            timer.daemon = True
            timer.start()
        self._kick.set()

    def _fail_locked(
        self, record: ServiceJob, exc: BaseException, duration: float
    ) -> None:
        record.attempts.append(
            JobAttempt(
                index=record.attempt,
                duration=duration,
                error=exc,
                replanned_k=record.replanned_k,
            )
        )
        record.state = "failed"
        record.error = (_error_kind(exc), str(exc))
        record.finished_at = time.time()
        self._stats.finished(record.tenant, ok=False)
        record.done.set()

    def _requeue(self, record: ServiceJob) -> None:
        with self._lock:
            if self._closed or record.state != "queued":
                return
            self._scheduler.requeue(
                QueuedJob(
                    job_id=record.job_id,
                    tenant=record.tenant,
                    priority=record.priority,
                    workers=record.workers,
                    est_bytes=record.est_bytes,
                    payload=record,
                    enqueued_at=record.enqueued_mono,
                    shrink=record.spec.shrink_to,
                )
            )
        self._kick.set()

    # -- control port -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            t = threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True,
                name="service-conn",
            )
            t.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        req: Any = None
        try:
            conn.settimeout(self._RESULT_POLL_CAP + 30.0)
            try:
                req = recv_obj(conn)
            except (OSError, ConnectionError):
                return
            try:
                resp = self._handle_request(req)
            except AdmissionError as exc:
                resp = ("rejected", exc.kind, str(exc))
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                resp = ("error", _error_kind(exc), str(exc))
            try:
                send_obj(conn, resp)
            except (OSError, ConnectionError):  # pragma: no cover
                pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if req is not None and req and req[0] == "shutdown":
            self.close()

    def _handle_request(self, req: Any) -> Tuple:
        if not isinstance(req, tuple) or not req:
            raise RuntimeError(f"malformed service request: {req!r}")
        kind = req[0]
        if kind == "submit":
            _, spec, opts = req
            record = self.submit(
                spec,
                tenant=opts.get("tenant", "default"),
                priority=opts.get("priority", 0),
                workers=opts.get("workers"),
            )
            return ("ok", record.job_id)
        if kind == "status":
            job_id = req[1] if len(req) > 1 else None
            return ("ok", self.describe_jobs(job_id))
        if kind == "stats":
            return ("ok", self.stats())
        if kind == "result":
            _, job_id, timeout = req
            with self._lock:
                record = self._jobs.get(job_id)
            if record is None:
                raise RuntimeError(f"unknown job id {job_id}")
            record.done.wait(
                min(self._RESULT_POLL_CAP, max(0.0, float(timeout)))
            )
            if not record.done.is_set():
                return ("pending", record.state)
            if record.state == "done":
                # Third element since protocol v2: attempt metadata the
                # client surfaces on its handle (elastic re-plans).
                return (
                    "ok",
                    record.result,
                    {
                        "replanned_k": record.replanned_k,
                        "attempts": len(record.attempts),
                    },
                )
            assert record.error is not None
            return ("failed", record.error[0], record.error[1])
        if kind == "shutdown":
            return ("ok", None)  # close() runs after the response is sent
        raise RuntimeError(f"unknown service request {kind!r}")
