"""Wireless distributed sorting over the shared medium.

The full CodedTeraSort pipeline executed by ``K`` mobile users whose only
link is a TDMA broadcast channel (plus an access point).  Because the
medium admits one transmitter at a time, the execution is faithfully
driven sequentially in-process — the *airtime* is the quantity under
study, and the real coding engine (Algorithm 1/2) runs on real bytes, so
correctness is end-to-end: the output is validated as a sorted
permutation of the input.

Protocols:

* ``"uncoded"`` — the designated holder of each needed intermediate value
  uplinks it to the AP, which downlinks it to the consumer (two flights);
* ``"d2d"`` — each coded packet is broadcast device-to-device once,
  serving its ``r`` receivers simultaneously;
* ``"edge"`` — coded packets relayed through the AP ([25]): uplink once,
  one broadcast downlink (two flights, still ``r``-fold coded gain).

With ``group_size`` set, the grouped placement of :mod:`repro.scalable`
is used and coding stays inside groups — the [24] construction whose
airtime load is independent of the user count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.coded_common import group_store_by_subset
from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.core.groups import build_coding_plan
from repro.core.mapper import hash_file, map_node_coded
from repro.core.partitioner import RangePartitioner
from repro.core.placement import CodedPlacement
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.scalable.grouping import NodeGrouping
from repro.scalable.placement import GroupedCodedPlacement
from repro.utils.subsets import Subset
from repro.wireless.channel import AirtimeLog, WirelessChannel

PROTOCOLS = ("uncoded", "d2d", "edge")


@dataclass
class WirelessSortOutcome:
    """Result of a wireless sort session.

    Attributes:
        partitions: per-user sorted output shards (ascending key ranges).
        airtime: the channel log (per-direction bytes and seconds).
        meta: configuration echo plus derived statistics.
    """

    partitions: List[RecordBatch]
    airtime: AirtimeLog
    meta: Dict[str, object] = field(default_factory=dict)

    def shuffle_load(self) -> float:
        """Measured airtime bytes / total input bytes (Eq. (2) style)."""
        total = self.meta["input_records"] * 100
        if total == 0:
            return 0.0
        return self.airtime.total_bytes / total


def _plain_session(
    data: RecordBatch,
    num_users: int,
    redundancy: int,
    protocol: str,
    channel: WirelessChannel,
) -> List[RecordBatch]:
    """Un-grouped session: plain coded placement over all K users."""
    k = num_users
    partitioner = RangePartitioner.uniform(k)
    placement = CodedPlacement(k, redundancy)
    assignments = placement.place(data)

    files: List[Dict[int, RecordBatch]] = [dict() for _ in range(k)]
    subsets: List[Dict[int, Subset]] = [dict() for _ in range(k)]
    for fa in assignments:
        for node in fa.subset:
            files[node][fa.file_id] = fa.data
            subsets[node][fa.file_id] = fa.subset

    # Map + retention at every user.
    stores: List[Dict[Tuple[Subset, int], bytes]] = []
    for u in range(k):
        kept = map_node_coded(u, files[u], subsets[u], partitioner)
        store = group_store_by_subset(kept, subsets[u])
        stores.append({key: b.to_bytes() for key, b in store.items()})

    received: List[List[bytes]] = [[] for _ in range(k)]
    if protocol == "uncoded":
        # Designated holder (min of S) relays I^t_S through the AP.
        for subset in placement.subsets():
            sender = min(subset)
            for target in range(k):
                if target in subset:
                    continue
                payload = stores[sender][(tuple(subset), target)]
                channel.transmit(sender, [WirelessChannel.AP], payload)
                channel.transmit(WirelessChannel.AP, [target], payload)
                received[target].append(payload)
    else:
        plan = build_coding_plan(k, redundancy)
        packets: Dict[Tuple[int, int], bytes] = {}
        for gidx, group in enumerate(plan.groups):
            for sender in group:

                def lookup(subset: Subset, target: int, _s=sender) -> bytes:
                    return stores[_s][(subset, target)]

                packets[(gidx, sender)] = encode_packet(
                    sender, group, lookup
                ).to_bytes()
        for gidx, sender in plan.schedule:
            group = plan.groups[gidx]
            others = [m for m in group if m != sender]
            payload = packets[(gidx, sender)]
            if protocol == "d2d":
                channel.transmit(sender, others, payload)
            else:  # edge: relay through the AP
                channel.transmit(sender, [WirelessChannel.AP], payload)
                channel.transmit(WirelessChannel.AP, others, payload)
        # Decode at every user.
        for u in range(k):

            def lookup_u(subset: Subset, target: int) -> bytes:
                return stores[u][(subset, target)]

            for gidx in plan.groups_of_node[u]:
                group = plan.groups[gidx]
                got = {
                    s: CodedPacket.from_bytes(packets[(gidx, s)])
                    for s in group
                    if s != u
                }
                received[u].append(
                    recover_intermediate(u, group, got, lookup_u)
                )

    # Reduce.
    out: List[RecordBatch] = []
    for u in range(k):
        own = [
            RecordBatch.from_bytes(buf)
            for (subset, target), buf in stores[u].items()
            if target == u and u in subset
        ]
        decoded = [RecordBatch.from_bytes(buf) for buf in received[u]]
        out.append(sort_batch(RecordBatch.concat(own + decoded)))
    return out


def _grouped_session(
    data: RecordBatch,
    num_users: int,
    redundancy: int,
    group_size: int,
    channel: WirelessChannel,
) -> List[RecordBatch]:
    """Grouped D2D session ([24]): coding inside groups of g users."""
    grouping = NodeGrouping(num_nodes=num_users, group_size=group_size)
    partitioner = RangePartitioner.uniform(num_users)
    placement = GroupedCodedPlacement(grouping, redundancy)
    assignments = placement.place(data)
    views = placement.per_node_views(assignments)
    member_subsets = {fa.file_id: fa.member_subset for fa in assignments}

    plan = build_coding_plan(group_size, redundancy)
    out: List[Optional[RecordBatch]] = [None] * num_users
    for j in range(grouping.num_groups):
        members = grouping.members(j)
        stores: Dict[int, Dict[Tuple[Subset, int], bytes]] = {}
        for u in members:
            kept: Dict[int, Dict[int, RecordBatch]] = {}
            subs: Dict[int, Subset] = {}
            for file_id, payload in views[u].items():
                msub = member_subsets[file_id]
                gsub = grouping.to_global(j, msub)
                parts = hash_file(payload, partitioner)
                retained = {u: parts[u]}
                in_subset = set(msub)
                for mate in members:
                    if (
                        mate != u
                        and grouping.member_index(mate) not in in_subset
                    ):
                        retained[mate] = parts[mate]
                kept[file_id] = retained
                subs[file_id] = gsub
            store = group_store_by_subset(kept, subs)
            stores[u] = {key: b.to_bytes() for key, b in store.items()}

        packets: Dict[Tuple[int, int], bytes] = {}
        for gidx, mgroup in enumerate(plan.groups):
            ggroup = grouping.to_global(j, mgroup)
            for sender in ggroup:

                def lookup(subset: Subset, target: int, _s=sender) -> bytes:
                    return stores[_s][(subset, target)]

                packets[(gidx, sender)] = encode_packet(
                    sender, ggroup, lookup
                ).to_bytes()
        for gidx, member_sender in plan.schedule:
            ggroup = grouping.to_global(j, plan.groups[gidx])
            sender = members[member_sender]
            others = [m for m in ggroup if m != sender]
            channel.transmit(sender, others, packets[(gidx, sender)])

        for u in members:
            m_idx = grouping.member_index(u)

            def lookup_u(subset: Subset, target: int) -> bytes:
                return stores[u][(subset, target)]

            decoded: List[RecordBatch] = []
            for gidx in plan.groups_of_node[m_idx]:
                ggroup = grouping.to_global(j, plan.groups[gidx])
                got = {
                    s: CodedPacket.from_bytes(packets[(gidx, s)])
                    for s in ggroup
                    if s != u
                }
                decoded.append(
                    RecordBatch.from_bytes(
                        recover_intermediate(u, ggroup, got, lookup_u)
                    )
                )
            own = [
                RecordBatch.from_bytes(buf)
                for (subset, target), buf in stores[u].items()
                if target == u
            ]
            out[u] = sort_batch(RecordBatch.concat(own + decoded))
    return [p for p in out if p is not None]


def run_wireless_sort(
    data: RecordBatch,
    num_users: int,
    redundancy: int,
    protocol: str = "d2d",
    channel: Optional[WirelessChannel] = None,
    group_size: Optional[int] = None,
) -> WirelessSortOutcome:
    """Sort ``data`` across ``num_users`` mobile users over the air.

    Args:
        data: input records.
        num_users: ``K`` mobile users.
        redundancy: coded placement ``r`` (within groups if grouped).
        protocol: ``"uncoded"``, ``"d2d"`` or ``"edge"``; grouped sessions
            (``group_size`` set) always use D2D broadcast.
        channel: the shared medium (default: fresh 20 Mbps channel).
        group_size: enable the grouped construction of [24].

    Returns:
        The validated outcome with per-direction airtime accounting.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}"
        )
    channel = channel or WirelessChannel(num_users)
    if channel.num_users != num_users:
        raise ValueError(
            f"channel has {channel.num_users} users, session asked for "
            f"{num_users}"
        )
    if group_size is not None:
        if protocol != "d2d":
            raise ValueError("grouped sessions use the d2d protocol")
        if not 1 <= redundancy < group_size:
            raise ValueError(
                f"need 1 <= r < g, got r={redundancy}, g={group_size}"
            )
        partitions = _grouped_session(
            data, num_users, redundancy, group_size, channel
        )
    else:
        if not 1 <= redundancy < num_users:
            raise ValueError(
                f"redundancy must be in [1, K-1], got {redundancy}"
            )
        partitions = _plain_session(
            data, num_users, redundancy, protocol, channel
        )
    return WirelessSortOutcome(
        partitions=partitions,
        airtime=channel.log,
        meta={
            "num_users": num_users,
            "redundancy": redundancy,
            "protocol": protocol if group_size is None else "d2d-grouped",
            "group_size": group_size,
            "input_records": len(data),
        },
    )
