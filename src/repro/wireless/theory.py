"""Closed-form airtime loads for wireless shuffling ([24], [25]).

Loads are normalized by the total input bytes ``D``, as in Eq. (2).  With
``K`` users each storing an ``r``-redundant coded placement, a user needs
``(1 - r/K) / K`` of the input from others; summed over users the
*demand* is ``1 - r/K``.  What that demand costs in airtime depends on
the protocol:

* **uncoded relay** — every intermediate value flies twice (user ->
  AP -> user): ``L = 2 (1 - r/K)``;
* **coded D2D broadcast** — each coded packet flies once and serves
  ``r`` users: ``L = (1/r)(1 - r/K)``, a ``2r``-fold saving;
* **edge-facilitated coded** ([25]) — coded packets relayed through the
  AP (users outside mutual radio range): twice the D2D load;
* **grouped** ([24]) — coding inside groups of ``g`` with the dataset
  replicated per group: ``L = (1/r)(1 - r/g)`` — *independent of K*, the
  scalability property [24] proves: adding users (groups) adds compute
  without adding airtime per byte sorted.
"""

from __future__ import annotations


def _check(r: int, k: int) -> None:
    if not 1 <= r <= k:
        raise ValueError(f"need 1 <= r <= K, got r={r}, K={k}")


def wireless_uncoded_load(redundancy: int, num_users: int) -> float:
    """Uncoded relay through the AP: ``2 (1 - r/K)``."""
    _check(redundancy, num_users)
    return 2.0 * (1.0 - redundancy / num_users)


def wireless_coded_load(redundancy: int, num_users: int) -> float:
    """Coded device-to-device broadcast: ``(1/r)(1 - r/K)``."""
    _check(redundancy, num_users)
    return (1.0 / redundancy) * (1.0 - redundancy / num_users)


def wireless_edge_load(redundancy: int, num_users: int) -> float:
    """Edge-facilitated coded relay ([25]): ``(2/r)(1 - r/K)``."""
    return 2.0 * wireless_coded_load(redundancy, num_users)


def wireless_grouped_load(redundancy: int, group_size: int) -> float:
    """Grouped D2D coding ([24]): ``(1/r)(1 - r/g)``, independent of K."""
    if not 1 <= redundancy < group_size:
        raise ValueError(
            f"need 1 <= r < g, got r={redundancy}, g={group_size}"
        )
    return (1.0 / redundancy) * (1.0 - redundancy / group_size)
