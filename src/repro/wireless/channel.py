"""The shared wireless medium: TDMA broadcast with airtime accounting.

One transmitter holds the channel at a time (TDMA — there is no spatial
reuse in a single collision domain), and a transmission is *inherently
broadcast*: every addressed receiver hears the same airtime.  The channel
therefore charges each transmission once, regardless of how many users it
serves — the physical property coded multicast exploits.

Transmissions are tagged by direction (``uplink`` to the access point,
``downlink`` from it, ``d2d`` between users) so protocols can be compared
by where they spend air.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class AirtimeLog:
    """Accumulated channel usage.

    Attributes:
        transmissions: count per direction.
        payload_bytes: payload per direction (each counted once).
        airtime_s: channel-occupancy seconds per direction.
    """

    transmissions: Dict[str, int] = field(default_factory=dict)
    payload_bytes: Dict[str, float] = field(default_factory=dict)
    airtime_s: Dict[str, float] = field(default_factory=dict)

    def add(self, direction: str, nbytes: float, seconds: float) -> None:
        self.transmissions[direction] = (
            self.transmissions.get(direction, 0) + 1
        )
        self.payload_bytes[direction] = (
            self.payload_bytes.get(direction, 0.0) + nbytes
        )
        self.airtime_s[direction] = (
            self.airtime_s.get(direction, 0.0) + seconds
        )

    @property
    def total_bytes(self) -> float:
        return sum(self.payload_bytes.values())

    @property
    def total_airtime(self) -> float:
        return sum(self.airtime_s.values())

    @property
    def total_transmissions(self) -> int:
        return sum(self.transmissions.values())


class WirelessChannel:
    """A single collision domain shared by ``num_users`` users and an AP.

    Args:
        num_users: the mobile users 0..K-1; the access point is addressed
            as :attr:`AP`.
        rate_bytes_per_s: physical-layer goodput (default 2.5 MB/s — a
            20 Mbps WLAN).
        per_tx_overhead_s: per-transmission channel-access overhead
            (contention, preamble, ACK), charged once per transmission.
    """

    #: Address of the access point in transmit()/receiver lists.
    AP = -1

    def __init__(
        self,
        num_users: int,
        rate_bytes_per_s: float = 2.5e6,
        per_tx_overhead_s: float = 1.0e-3,
    ) -> None:
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {num_users}")
        if rate_bytes_per_s <= 0:
            raise ValueError(f"rate must be > 0, got {rate_bytes_per_s}")
        if per_tx_overhead_s < 0:
            raise ValueError(
                f"overhead must be >= 0, got {per_tx_overhead_s}"
            )
        self.num_users = num_users
        self.rate = float(rate_bytes_per_s)
        self.per_tx_overhead = float(per_tx_overhead_s)
        self.log = AirtimeLog()
        #: chronological (src, receivers, direction, bytes) record.
        self.trace: List[Tuple[int, Tuple[int, ...], str, int]] = []

    def _check_party(self, party: int) -> None:
        if party != self.AP and not 0 <= party < self.num_users:
            raise ValueError(
                f"party {party} is neither a user in range"
                f"({self.num_users}) nor the AP"
            )

    def transmit(
        self, src: int, receivers: Sequence[int], payload: bytes
    ) -> float:
        """One TDMA transmission; returns the airtime spent.

        The direction is inferred: to the AP = ``uplink``, from the AP =
        ``downlink``, user to users = ``d2d``.  Airtime is charged once
        no matter how many receivers are addressed (broadcast).
        """
        self._check_party(src)
        recv = tuple(receivers)
        if not recv:
            raise ValueError("transmission needs at least one receiver")
        for r in recv:
            self._check_party(r)
            if r == src:
                raise ValueError("transmitter cannot address itself")
        if src == self.AP:
            direction = "downlink"
        elif recv == (self.AP,):
            direction = "uplink"
        else:
            direction = "d2d"
        seconds = self.per_tx_overhead + len(payload) / self.rate
        self.log.add(direction, len(payload), seconds)
        self.trace.append((src, recv, direction, len(payload)))
        return seconds
