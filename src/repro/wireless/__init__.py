"""Wireless distributed computing — the paper's §VI mobile direction.

The paper's conclusion singles out mobile applications (augmented
reality, recommender systems) where shuffles cross *wireless* links, and
points to the authors' theoretical treatments: a scalable framework for
wireless distributed computing [24] and its edge-facilitated variant
[25].  This subpackage builds that setting from scratch:

* :mod:`repro.wireless.channel` — a TDMA shared broadcast medium: one
  transmitter at a time, every addressed user hears a transmission once,
  airtime is the resource being spent;
* :mod:`repro.wireless.wdc` — map-shuffle-reduce for sorting over the
  medium, with three shuffle protocols: uncoded relay through the access
  point (every intermediate value crosses the air twice), coded
  device-to-device broadcast (each coded packet crosses once and serves
  ``r`` users), and the edge-facilitated coded relay of [25];
* :mod:`repro.wireless.theory` — closed-form airtime loads, including
  the grouped variant whose load is *independent of the user count* —
  the scalability headline of [24].

The wireless medium serializes all traffic by nature, which is exactly
the regime where coded shuffling shines (cf. the scheduling ablation in
``benchmarks/bench_ablation_schedules.py``).
"""

from repro.wireless.channel import AirtimeLog, WirelessChannel
from repro.wireless.theory import (
    wireless_coded_load,
    wireless_edge_load,
    wireless_grouped_load,
    wireless_uncoded_load,
)
from repro.wireless.wdc import WirelessSortOutcome, run_wireless_sort

__all__ = [
    "WirelessChannel",
    "AirtimeLog",
    "run_wireless_sort",
    "WirelessSortOutcome",
    "wireless_uncoded_load",
    "wireless_coded_load",
    "wireless_edge_load",
    "wireless_grouped_load",
]
