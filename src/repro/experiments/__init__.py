"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.experiments.configs` — the paper's published numbers and the
  experiment grid;
* :mod:`repro.experiments.tables` — Tables I, II, III (simulated at full
  12 GB scale) with paper-vs-measured comparison;
* :mod:`repro.experiments.figures` — Fig. 2 load curves (theory + measured
  byte accounting), the speedup-vs-r and speedup-vs-K trend sweeps (§V-C),
  and the extended grid behind the "up to 4.11x" remark;
* :mod:`repro.experiments.report` — renders console/markdown reports;
  EXPERIMENTS.md is generated from here (``python -m repro report``).
"""

from repro.experiments.tables import table1, table2, table3
from repro.experiments.figures import fig2_series, sweep_r, sweep_k
from repro.experiments.report import render_all, write_experiments_md

__all__ = [
    "table1",
    "table2",
    "table3",
    "fig2_series",
    "sweep_r",
    "sweep_k",
    "render_all",
    "write_experiments_md",
]
