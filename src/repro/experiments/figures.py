"""Regenerating the paper's figures and §V-C trend observations.

* :func:`fig2_series` — Fig. 2's communication-load curves: the closed
  forms of Eq. (2) *and* loads measured by byte accounting on real
  functional runs of the engine (small scale, thread backend);
* :func:`sweep_r` — speedup vs r at fixed K (the §V-C observation that
  speedup rises while shuffle dominates and falls once CodeGen does);
* :func:`sweep_k` — speedup vs K at fixed r (speedup decreases with K);
* :func:`extended_grid` — the broader (K, r) grid behind the paper's
  "up to 4.11x" remark;
* :func:`schedule_ablation` — serial (paper) vs parallel (future-work)
  shuffle scheduling;
* :func:`multicast_penalty_ablation` — the effect of the MPI_Bcast
  logarithmic penalty on the achieved shuffle gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.coded_terasort import run_coded_terasort
from repro.core.terasort import run_terasort
from repro.core.theory import (
    coded_comm_load,
    coded_shuffle_bytes,
    uncoded_comm_load,
    uncoded_shuffle_bytes,
)
from repro.experiments.configs import (
    EXTENDED_GRID,
    FIG2_K,
    PAPER_RECORDS,
    SWEEP_K_VALUES,
    SWEEP_R_VALUES,
)
from repro.kvpairs.records import RECORD_BYTES
from repro.kvpairs.teragen import teragen
from repro.runtime.inproc import ThreadCluster
from repro.sim.costmodel import EC2CostModel
from repro.sim.runner import simulate_coded_terasort, simulate_terasort


@dataclass
class Fig2Point:
    """One r value on the Fig. 2 curves."""

    r: int
    uncoded_theory: float
    coded_theory: float
    #: loads measured from real runs (payload bytes / total data bytes);
    #: None where a functional run is skipped (r = K has no shuffle).
    uncoded_measured: Optional[float] = None
    coded_measured: Optional[float] = None


def fig2_series(
    num_nodes: int = FIG2_K,
    n_records: int = 20_000,
    measure: bool = True,
    max_measured_r: Optional[int] = None,
) -> List[Fig2Point]:
    """Fig. 2: communication load vs computation load at ``K`` nodes.

    Theory curves are exact; measured points run the real engine on the
    thread backend and count shuffle payload bytes (headers included, which
    is why measured sits a hair above theory).

    Args:
        num_nodes: the figure's K (paper uses 10).
        n_records: records for the functional runs.
        measure: also run the engine (slower); theory-only if False.
        max_measured_r: cap measured r (binomials explode past ~K/2).
    """
    data = teragen(n_records, seed=11) if measure else None
    points: List[Fig2Point] = []
    total_bytes = n_records * RECORD_BYTES
    for r in range(1, num_nodes + 1):
        point = Fig2Point(
            r=r,
            uncoded_theory=uncoded_comm_load(r, num_nodes),
            coded_theory=coded_comm_load(r, num_nodes),
        )
        cap = max_measured_r if max_measured_r is not None else num_nodes - 1
        if measure and r <= cap:
            run = run_coded_terasort(
                ThreadCluster(num_nodes, recv_timeout=120.0),
                data,
                redundancy=r,
            )
            point.coded_measured = (
                run.traffic.load_bytes("shuffle") / total_bytes
            )
            if r == 1:
                base = run_terasort(
                    ThreadCluster(num_nodes, recv_timeout=120.0), data
                )
                point.uncoded_measured = (
                    base.traffic.load_bytes("shuffle") / total_bytes
                )
        points.append(point)
    return points


@dataclass
class SweepPoint:
    """One configuration in a speedup sweep."""

    num_nodes: int
    redundancy: int
    terasort_total: float
    coded_total: float
    codegen_time: float
    shuffle_time: float

    @property
    def speedup(self) -> float:
        return self.terasort_total / self.coded_total


def sweep_r(
    num_nodes: int = 16,
    r_values: Tuple[int, ...] = SWEEP_R_VALUES,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
) -> List[SweepPoint]:
    """Speedup vs r at fixed K (§V-C: rises, then CodeGen takes over)."""
    base = simulate_terasort(
        num_nodes, n_records=n_records, cost=cost, granularity="turn"
    )
    points = []
    for r in r_values:
        if not 1 <= r < num_nodes:
            continue
        rep = simulate_coded_terasort(
            num_nodes, r, n_records=n_records, cost=cost, granularity="turn"
        )
        points.append(
            SweepPoint(
                num_nodes=num_nodes,
                redundancy=r,
                terasort_total=base.total_time,
                coded_total=rep.total_time,
                codegen_time=rep.stage_times["codegen"],
                shuffle_time=rep.stage_times["shuffle"],
            )
        )
    return points


def sweep_k(
    redundancy: int = 3,
    k_values: Tuple[int, ...] = SWEEP_K_VALUES,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
) -> List[SweepPoint]:
    """Speedup vs K at fixed r (§V-C: speedup decreases with K)."""
    points = []
    for k in k_values:
        if redundancy >= k:
            continue
        base = simulate_terasort(
            k, n_records=n_records, cost=cost, granularity="turn"
        )
        rep = simulate_coded_terasort(
            k, redundancy, n_records=n_records, cost=cost, granularity="turn"
        )
        points.append(
            SweepPoint(
                num_nodes=k,
                redundancy=redundancy,
                terasort_total=base.total_time,
                coded_total=rep.total_time,
                codegen_time=rep.stage_times["codegen"],
                shuffle_time=rep.stage_times["shuffle"],
            )
        )
    return points


def extended_grid(
    grid: Tuple[Tuple[int, int], ...] = EXTENDED_GRID,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
) -> List[SweepPoint]:
    """The broader (K, r) grid; the paper reports up to 4.11x on it."""
    points = []
    base_cache: Dict[int, float] = {}
    for k, r in grid:
        if not 1 <= r < k:
            continue
        if k not in base_cache:
            base_cache[k] = simulate_terasort(
                k, n_records=n_records, cost=cost, granularity="turn"
            ).total_time
        rep = simulate_coded_terasort(
            k, r, n_records=n_records, cost=cost, granularity="turn"
        )
        points.append(
            SweepPoint(
                num_nodes=k,
                redundancy=r,
                terasort_total=base_cache[k],
                coded_total=rep.total_time,
                codegen_time=rep.stage_times["codegen"],
                shuffle_time=rep.stage_times["shuffle"],
            )
        )
    return points


@dataclass
class AblationResult:
    """Named variants -> total (and shuffle) times."""

    name: str
    rows: List[Tuple[str, float, float]] = field(default_factory=list)
    #: rows: (variant label, shuffle seconds, total seconds)


def schedule_ablation(
    num_nodes: int = 16,
    redundancy: int = 3,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
) -> AblationResult:
    """Serial (paper, Fig. 9) vs parallel (§VI future work) schedules.

    Three variants: the paper's serial turns; naive asynchronous sending
    (every node transmits at once, contending for NICs); and scheduled
    parallelism over conflict-free rounds (1-factorization for unicast,
    greedy group packing for multicast).  The rounds variant quantifies
    the §VI "asynchronous execution" headroom — and shows that under full
    parallelism the uncoded exchange (2 nodes per transfer) has more
    concurrency headroom than r+1-node multicasts, so coding's win is tied
    to the serialized-fabric regime the paper operates in.
    """
    out = AblationResult(
        name=f"Shuffle scheduling (K={num_nodes}, r={redundancy})"
    )
    variants = (
        ("serial", "serial (paper)"),
        ("parallel", "parallel (naive async)"),
        ("rounds", "rounds (scheduled parallel)"),
    )
    for schedule, label in variants:
        ts = simulate_terasort(
            num_nodes, n_records=n_records, cost=cost, schedule=schedule,
            granularity="transfer",
        )
        cts = simulate_coded_terasort(
            num_nodes, redundancy, n_records=n_records, cost=cost,
            schedule=schedule, granularity="transfer",
        )
        out.rows.append(
            (f"TeraSort, {label}", ts.stage_times["shuffle"], ts.total_time)
        )
        out.rows.append(
            (
                f"CodedTeraSort, {label}",
                cts.stage_times["shuffle"],
                cts.total_time,
            )
        )
    return out


def multicast_penalty_ablation(
    num_nodes: int = 16,
    redundancy: int = 3,
    n_records: int = PAPER_RECORDS,
) -> AblationResult:
    """Effect of MPI_Bcast's logarithmic penalty (§V-C observation 3).

    gamma = 0 is an ideal multicast (full r-fold shuffle gain); the
    calibrated gamma = 0.31 reproduces the measured sub-r gains.
    """
    out = AblationResult(
        name=f"Multicast penalty (K={num_nodes}, r={redundancy})"
    )
    for gamma, label in ((0.0, "ideal multicast (gamma=0)"), (0.31, "calibrated (gamma=0.31)")):
        cost = EC2CostModel.paper_calibrated().with_overrides(
            multicast_gamma=gamma
        )
        rep = simulate_coded_terasort(
            num_nodes,
            redundancy,
            n_records=n_records,
            cost=cost,
            granularity="turn",
        )
        out.rows.append((label, rep.stage_times["shuffle"], rep.total_time))
    return out
