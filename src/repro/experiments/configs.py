"""The paper's published results and the reproduction experiment grid.

Numbers transcribed from the paper (Tables I-III; all seconds, 12 GB input,
100 Mbps NICs, averages of 5 runs).  These are the reference values every
reproduction report compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: The paper's input: 12 GB = 120 M records of 100 bytes (§V-B).
PAPER_RECORDS = 120_000_000
PAPER_GB = 12

#: Stage column orders as printed in the paper's tables.
UNCODED_COLUMNS = ["map", "pack", "shuffle", "unpack", "reduce"]
CODED_COLUMNS = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]


@dataclass(frozen=True)
class PaperRow:
    """One published table row."""

    algorithm: str  # "terasort" | "coded_terasort"
    num_nodes: int
    redundancy: Optional[int]  # None for TeraSort
    stages: Dict[str, float]
    total: float
    speedup: Optional[float]  # vs the TeraSort row of the same table


# Table I == the TeraSort row of Table II (K = 16).
TABLE1_TERASORT = PaperRow(
    algorithm="terasort",
    num_nodes=16,
    redundancy=None,
    stages={
        "map": 1.86,
        "pack": 2.35,
        "shuffle": 945.72,
        "unpack": 0.85,
        "reduce": 10.47,
    },
    total=961.25,
    speedup=None,
)

TABLE2_ROWS: List[PaperRow] = [
    TABLE1_TERASORT,
    PaperRow(
        algorithm="coded_terasort",
        num_nodes=16,
        redundancy=3,
        stages={
            "codegen": 6.06,
            "map": 6.03,
            "encode": 5.79,
            "shuffle": 412.22,
            "decode": 2.41,
            "reduce": 13.05,
        },
        total=445.56,
        speedup=2.16,
    ),
    PaperRow(
        algorithm="coded_terasort",
        num_nodes=16,
        redundancy=5,
        stages={
            "codegen": 23.47,
            "map": 10.84,
            "encode": 8.10,
            "shuffle": 222.83,
            "decode": 3.69,
            "reduce": 14.40,
        },
        total=283.33,
        speedup=3.39,
    ),
]

TABLE3_ROWS: List[PaperRow] = [
    PaperRow(
        algorithm="terasort",
        num_nodes=20,
        redundancy=None,
        stages={
            "map": 1.47,
            "pack": 2.00,
            "shuffle": 960.07,
            "unpack": 0.62,
            "reduce": 8.29,
        },
        total=972.45,
        speedup=None,
    ),
    PaperRow(
        algorithm="coded_terasort",
        num_nodes=20,
        redundancy=3,
        stages={
            "codegen": 19.32,
            "map": 4.68,
            "encode": 4.89,
            "shuffle": 453.37,
            "decode": 1.87,
            "reduce": 9.73,
        },
        total=493.86,
        speedup=1.97,
    ),
    PaperRow(
        algorithm="coded_terasort",
        num_nodes=20,
        redundancy=5,
        stages={
            "codegen": 140.91,
            "map": 8.59,
            "encode": 7.51,
            "shuffle": 269.42,
            "decode": 3.70,
            "reduce": 10.97,
        },
        total=441.10,
        speedup=2.20,
    ),
]

#: The trend sweeps of §V-C: r at fixed K = 16, K at fixed r = 3.
SWEEP_R_VALUES: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
SWEEP_K_VALUES: Tuple[int, ...] = (8, 12, 16, 20, 24)

#: Extended grid behind the paper's "up to 4.11x" remark ([23]).
EXTENDED_GRID: Tuple[Tuple[int, int], ...] = tuple(
    (k, r) for k in (12, 16, 20) for r in (2, 3, 4, 5, 6)
)

#: Fig. 2 uses K = 10 for its load curves.
FIG2_K = 10
