"""Report rendering: console tables and the EXPERIMENTS.md generator.

Every reproduced artifact renders as a paper-vs-measured table.  The
markdown document produced by :func:`write_experiments_md` is the checked-in
EXPERIMENTS.md; run ``python -m repro report`` to regenerate it.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

from repro.experiments.figures import (
    AblationResult,
    Fig2Point,
    SweepPoint,
    fig2_series,
    multicast_penalty_ablation,
    schedule_ablation,
    sweep_k,
    sweep_r,
)
from repro.experiments.tables import TableResult, table1, table2, table3
from repro.utils.tables import format_table


def render_table(result: TableResult, markdown: bool = False) -> str:
    """Render one regenerated table with per-stage paper/measured pairs."""
    out = io.StringIO()
    out.write(f"{result.name}\n")
    for row in result.rows:
        headers = ["row", "source"] + [s for s, _, _ in row.stage_pairs()] + [
            "total",
            "speedup",
        ]
        paper_speedup = row.paper.speedup
        measured_speedup = result.measured_speedup(row)
        rows = [
            [row.label, "paper"]
            + [p for _, p, _ in row.stage_pairs()]
            + [row.paper.total, paper_speedup],
            [row.label, "measured"]
            + [m for _, _, m in row.stage_pairs()]
            + [row.measured_total, measured_speedup],
        ]
        out.write(format_table(headers, rows, decimals=2, markdown=markdown))
        out.write("\n")
    return out.getvalue()


def render_fig2(points: Sequence[Fig2Point], markdown: bool = False) -> str:
    headers = [
        "r",
        "uncoded L (theory)",
        "coded L (theory)",
        "uncoded L (measured)",
        "coded L (measured)",
    ]
    rows = [
        [p.r, p.uncoded_theory, p.coded_theory, p.uncoded_measured, p.coded_measured]
        for p in points
    ]
    return format_table(headers, rows, decimals=4, markdown=markdown)


def render_sweep(
    points: Sequence[SweepPoint], what: str, markdown: bool = False
) -> str:
    headers = [
        "K",
        "r",
        "TeraSort total (s)",
        "Coded total (s)",
        "CodeGen (s)",
        "Shuffle (s)",
        "speedup",
    ]
    rows = [
        [
            p.num_nodes,
            p.redundancy,
            p.terasort_total,
            p.coded_total,
            p.codegen_time,
            p.shuffle_time,
            p.speedup,
        ]
        for p in points
    ]
    return f"{what}\n" + format_table(headers, rows, decimals=2, markdown=markdown)


def render_ablation(result: AblationResult, markdown: bool = False) -> str:
    headers = ["variant", "shuffle (s)", "total (s)"]
    rows = [[label, sh, tot] for label, sh, tot in result.rows]
    return f"{result.name}\n" + format_table(
        headers, rows, decimals=2, markdown=markdown
    )


def render_all(fast: bool = False, markdown: bool = False) -> str:
    """Run every experiment and render the full reproduction report.

    Args:
        fast: use coarse event granularity and theory-only Fig. 2 points
            (used by tests; the full run takes ~1 minute).
        markdown: pipe-table output.
    """
    granularity = "turn" if fast else "transfer"
    out = io.StringIO()
    out.write("# Coded TeraSort — reproduction report\n\n")
    out.write(
        "Simulated at the paper's scale (12 GB, 100 Mbps, serial shuffles) "
        "on the calibrated EC2 cost model; loads measured from real "
        "functional runs of the engine.\n\n"
    )
    for result in (
        table1(granularity=granularity),
        table2(granularity=granularity),
        table3(granularity=granularity),
    ):
        out.write("## " + result.name + "\n\n")
        out.write(render_table(result, markdown=markdown))
        out.write("\n")

    out.write("## Fig. 2 — communication load vs computation load (K=10)\n\n")
    points = fig2_series(measure=not fast, max_measured_r=6)
    out.write(render_fig2(points, markdown=markdown))
    out.write("\n")

    out.write("## §V-C trends\n\n")
    out.write(
        render_sweep(sweep_r(), "Speedup vs r (K=16)", markdown=markdown)
    )
    out.write("\n")
    out.write(
        render_sweep(sweep_k(), "Speedup vs K (r=3)", markdown=markdown)
    )
    out.write("\n")

    out.write("## Ablations\n\n")
    out.write(render_ablation(schedule_ablation(), markdown=markdown))
    out.write("\n")
    out.write(render_ablation(multicast_penalty_ablation(), markdown=markdown))
    out.write("\n")

    out.write(_render_extensions(fast=fast, markdown=markdown))
    return out.getvalue()


def _render_extensions(fast: bool = False, markdown: bool = False) -> str:
    """The §VI future-direction reproductions (extension pillars)."""
    from repro.kvpairs.teragen import teragen
    from repro.scalable.sim import simulate_grouped_coded_terasort
    from repro.sim.runner import simulate_coded_terasort, simulate_terasort
    from repro.stragglers.runner import (
        render_straggler_table,
        straggler_comparison,
    )
    from repro.utils.tables import format_table
    from repro.wireless.theory import (
        wireless_coded_load,
        wireless_edge_load,
        wireless_uncoded_load,
    )
    from repro.wireless.wdc import run_wireless_sort

    out = io.StringIO()
    out.write("## Extension: straggler coding (intro, ref [11])\n\n")
    out.write(
        "MDS-coded distributed gradient descent vs uncoded and "
        "2-replication; [11] reports a 31.3%-35.7% run-time saving.\n\n"
    )
    iters = 20 if fast else 80
    out.write(
        render_straggler_table(
            straggler_comparison(iterations=iters, seed=3),
            markdown=markdown,
        )
    )
    out.write("\n")

    out.write("## Extension: scalable (grouped) coding (§VI, ref [24])\n\n")
    base = simulate_terasort(20, granularity="turn")
    full = simulate_coded_terasort(20, 5, granularity="turn")
    grouped = simulate_grouped_coded_terasort(20, 10, 5, granularity="turn")
    rows = []
    for label, rep in (
        ("TeraSort", base),
        ("CodedTeraSort r=5", full),
        ("Grouped g=10, r=5", grouped),
    ):
        stage = rep.stage_times
        rows.append([
            label,
            stage.seconds.get("codegen", 0.0),
            stage.seconds.get("map", 0.0),
            stage.seconds.get("shuffle", 0.0),
            stage.total,
            base.total_time / rep.total_time,
        ])
    out.write(format_table(
        ["scheme", "codegen (s)", "map (s)", "shuffle (s)", "total (s)",
         "speedup"],
        rows, decimals=2, markdown=markdown,
    ))
    out.write("\n")

    out.write("## Extension: wireless shuffling (§VI, refs [24][25])\n\n")
    n = 6_000 if fast else 24_000
    k, r = 6, 2
    data = teragen(n, seed=0)
    theory = {
        "uncoded": wireless_uncoded_load(r, k),
        "edge": wireless_edge_load(r, k),
        "d2d": wireless_coded_load(r, k),
    }
    rows = []
    for protocol in ("uncoded", "edge", "d2d"):
        res = run_wireless_sort(data, k, r, protocol=protocol)
        rows.append([protocol, res.shuffle_load(), theory[protocol]])
    out.write(format_table(
        ["protocol", "measured airtime load", "theory"],
        rows, decimals=4, markdown=markdown,
    ))
    out.write("\n")
    return out.getvalue()


def write_experiments_md(
    path: str = "EXPERIMENTS.md", fast: bool = False
) -> str:
    """Generate the EXPERIMENTS.md document; returns its content."""
    content = _experiments_preamble() + render_all(fast=fast, markdown=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return content


def _experiments_preamble() -> str:
    return (
        "<!-- generated by `python -m repro report`; edit the generator, "
        "not this file -->\n\n"
        "This document records paper-vs-measured results for every table "
        "and figure in *Coded TeraSort* (Li et al., 2017).  Measured "
        "numbers come from the discrete-event simulator at full 12 GB "
        "scale (calibrated against Tables I-III as documented in "
        "DESIGN.md §5) and, for communication loads, from byte-accounted "
        "functional runs of the real engine.  Expected fidelity: stage "
        "times within ~10% per cell, speedups within ~0.25x, and all "
        "qualitative trends (who wins, where CodeGen overtakes, load "
        "curves) exact.\n\n"
    )
