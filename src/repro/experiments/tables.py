"""Regenerating Tables I, II, and III.

Each function simulates the corresponding table's rows at the paper's full
scale (12 GB, 100 Mbps) and pairs every measured cell with the published
value.  The returned :class:`TableResult` renders via
:mod:`repro.experiments.report` and feeds the reproduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.configs import (
    CODED_COLUMNS,
    PAPER_RECORDS,
    TABLE1_TERASORT,
    TABLE2_ROWS,
    TABLE3_ROWS,
    UNCODED_COLUMNS,
    PaperRow,
)
from repro.sim.costmodel import EC2CostModel
from repro.sim.runner import SimReport, simulate_coded_terasort, simulate_terasort


@dataclass
class RowComparison:
    """One table row: measured breakdown next to the paper's."""

    paper: PaperRow
    measured: SimReport

    @property
    def label(self) -> str:
        if self.paper.algorithm == "terasort":
            return "TeraSort"
        return f"CodedTeraSort r={self.paper.redundancy}"

    @property
    def measured_total(self) -> float:
        return self.measured.total_time

    @property
    def total_ratio(self) -> float:
        """measured / paper total time (1.0 = exact)."""
        return self.measured_total / self.paper.total

    def stage_pairs(self) -> List[tuple]:
        """(stage, paper seconds, measured seconds) in column order."""
        cols = (
            UNCODED_COLUMNS
            if self.paper.algorithm == "terasort"
            else CODED_COLUMNS
        )
        return [
            (s, self.paper.stages[s], self.measured.stage_times.seconds.get(s, 0.0))
            for s in cols
        ]


@dataclass
class TableResult:
    """A regenerated table: rows plus derived speedups."""

    name: str
    num_nodes: int
    rows: List[RowComparison] = field(default_factory=list)

    @property
    def terasort_row(self) -> RowComparison:
        for row in self.rows:
            if row.paper.algorithm == "terasort":
                return row
        raise LookupError("table has no TeraSort baseline row")

    def measured_speedup(self, row: RowComparison) -> Optional[float]:
        if row.paper.algorithm == "terasort":
            return None
        return self.terasort_row.measured_total / row.measured_total

    def speedup_pairs(self) -> List[tuple]:
        """(label, paper speedup, measured speedup) for coded rows."""
        out = []
        for row in self.rows:
            if row.paper.algorithm == "terasort":
                continue
            out.append((row.label, row.paper.speedup, self.measured_speedup(row)))
        return out


def _simulate_row(
    paper: PaperRow,
    n_records: int,
    cost: Optional[EC2CostModel],
    granularity: str,
) -> RowComparison:
    if paper.algorithm == "terasort":
        report = simulate_terasort(
            paper.num_nodes, n_records=n_records, cost=cost, granularity=granularity
        )
    else:
        assert paper.redundancy is not None
        report = simulate_coded_terasort(
            paper.num_nodes,
            paper.redundancy,
            n_records=n_records,
            cost=cost,
            granularity=granularity,
        )
    return RowComparison(paper=paper, measured=report)


def table1(
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
    granularity: str = "transfer",
) -> TableResult:
    """Table I: the TeraSort breakdown at K=16 (98.4% time in shuffle)."""
    return TableResult(
        name="Table I — TeraSort, 12 GB, K=16, 100 Mbps",
        num_nodes=16,
        rows=[_simulate_row(TABLE1_TERASORT, n_records, cost, granularity)],
    )


def table2(
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
    granularity: str = "transfer",
) -> TableResult:
    """Table II: TeraSort vs CodedTeraSort (r=3, 5) at K=16."""
    return TableResult(
        name="Table II — 12 GB, K=16 workers, 100 Mbps",
        num_nodes=16,
        rows=[
            _simulate_row(row, n_records, cost, granularity)
            for row in TABLE2_ROWS
        ],
    )


def table3(
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
    granularity: str = "transfer",
) -> TableResult:
    """Table III: TeraSort vs CodedTeraSort (r=3, 5) at K=20."""
    return TableResult(
        name="Table III — 12 GB, K=20 workers, 100 Mbps",
        num_nodes=20,
        rows=[
            _simulate_row(row, n_records, cost, granularity)
            for row in TABLE3_ROWS
        ],
    )
