"""The unified cluster factory: one URL scheme for all three backends.

Before this module, driver code hand-picked a constructor per backend —
``ThreadCluster(4)``, ``ProcessCluster(8)``, ``TcpCluster(8,
"tcp://host:port")`` — with three divergent call sites in the CLI and
every benchmark.  :func:`connect` collapses them behind one address::

    import repro

    repro.connect("inproc://4")            # 4 worker threads, this process
    repro.connect("proc://8")              # 8 forked worker processes
    repro.connect("tcp://10.0.0.1:4000", size=8)   # real multi-host mesh

The scheme picks the backend, the rest of the URL its only positional
parameter (worker count for the local backends, rendezvous address for
TCP — whose worker count cannot be inferred from an address, hence the
required ``size=`` keyword).  Every other knob is passed through as
keyword arguments to the backend constructor unchanged, so anything the
constructors accept, ``connect`` accepts::

    repro.connect("proc://8", rate_bytes_per_s=12.5e6)
    repro.connect("tcp://:0", size=6, resilient_workers=True)

The old constructors remain importable aliases — ``connect`` is sugar,
not a new layer: it returns the exact backend instance, with ``Session``
/ ``SortService`` / the ``run_*`` shims taking it unchanged.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.tcp import TcpCluster

__all__ = ["connect"]

#: scheme -> (backend, what the URL body means)
_SCHEMES = {
    "inproc": (ThreadCluster, "worker count"),
    "thread": (ThreadCluster, "worker count"),
    "proc": (ProcessCluster, "worker count"),
    "process": (ProcessCluster, "worker count"),
    "tcp": (TcpCluster, "rendezvous HOST:PORT"),
}

Cluster = Union[ThreadCluster, ProcessCluster, TcpCluster]


def connect(address: str, size: Optional[int] = None, **options: Any) -> Cluster:
    """Build a cluster from a backend URL (see the module docstring).

    Args:
        address: ``"inproc://K"`` / ``"thread://K"`` (worker threads),
            ``"proc://K"`` / ``"process://K"`` (forked worker
            processes), or ``"tcp://HOST:PORT"`` (multi-host rendezvous
            mesh; ``HOST:PORT`` is where the coordinator listens and
            workers ``repro worker --join``).
        size: worker count.  Required for ``tcp://`` (an address does
            not name a K); optional for the local schemes, where it must
            agree with the URL's count if both are given.
        **options: passed through to the backend constructor unchanged
            (``rate_bytes_per_s=``, ``timeout=``,
            ``resilient_workers=``, ...).

    Returns:
        The backend cluster instance (``ThreadCluster`` /
        ``ProcessCluster`` / ``TcpCluster``).

    Raises:
        ValueError: unknown scheme, malformed worker count, missing or
            conflicting ``size``.
    """
    scheme, sep, rest = address.partition("://")
    if not sep or scheme not in _SCHEMES:
        raise ValueError(
            f"cluster address must look like inproc://K, proc://K, or "
            f"tcp://HOST:PORT, got {address!r} "
            f"(known schemes: {', '.join(sorted(set(_SCHEMES)))})"
        )
    if scheme == "tcp":
        if size is None:
            raise ValueError(
                f"connect({address!r}) needs size= — a TCP rendezvous "
                "address does not name a worker count"
            )
        return TcpCluster(size, address, **options)
    try:
        url_size = int(rest)
    except ValueError:
        raise ValueError(
            f"{scheme}:// takes a worker count, got {address!r} "
            f"(expected e.g. {scheme}://4)"
        ) from None
    if size is not None and size != url_size:
        raise ValueError(
            f"conflicting worker counts: address says {url_size}, "
            f"size= says {size}"
        )
    backend = _SCHEMES[scheme][0]
    return backend(url_size, **options)
