"""Coded computation against stragglers (the paper's intro, ref [11]).

The introduction of *Coded TeraSort* motivates coding in distributed
computing with two complementary results: Coded MapReduce (the paper's own
line, implemented in :mod:`repro.core`) and the MDS-coded computation of
Lee et al. [11], which tolerates *stragglers* — slow workers that make a
synchronous step as slow as the slowest machine — and is reported to cut
the run time of distributed gradient descent by 31.3%–35.7%.

This subpackage implements that second pillar from scratch:

* :mod:`repro.stragglers.latency` — the shifted-exponential machine model
  used in [11], with exact order statistics;
* :mod:`repro.stragglers.mds` — real-valued (n, k) MDS erasure codes
  (systematic or Vandermonde), decodable from any k of n blocks;
* :mod:`repro.stragglers.matmul` — coded distributed matrix-vector
  multiplication: encode row blocks, wait for the fastest k workers,
  decode — plus uncoded and replication baselines;
* :mod:`repro.stragglers.polynomial` — polynomial codes for full
  matrix-matrix products with the optimal ``m n`` recovery threshold
  (Yu/Maddah-Ali/Avestimehr, the same group's follow-up);
* :mod:`repro.stragglers.regression` — distributed gradient descent for
  linear regression whose per-iteration matvecs run on any of the three
  schemes;
* :mod:`repro.stragglers.runner` — the experiment harness reproducing the
  31–36% average-runtime reduction band.
"""

from repro.stragglers.latency import HeterogeneousLatency, ShiftedExponential
from repro.stragglers.matmul import (
    CodedMatVec,
    MatVecOutcome,
    ReplicatedMatVec,
    UncodedMatVec,
    make_scheme,
)
from repro.stragglers.mds import MDSCode
from repro.stragglers.polynomial import PolynomialCodedMatMul
from repro.stragglers.regression import GradientDescentRun, coded_least_squares
from repro.stragglers.runner import StragglerExperiment, straggler_comparison

__all__ = [
    "ShiftedExponential",
    "HeterogeneousLatency",
    "MDSCode",
    "CodedMatVec",
    "UncodedMatVec",
    "ReplicatedMatVec",
    "MatVecOutcome",
    "make_scheme",
    "PolynomialCodedMatMul",
    "GradientDescentRun",
    "coded_least_squares",
    "StragglerExperiment",
    "straggler_comparison",
]
