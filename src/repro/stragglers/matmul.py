"""Coded distributed matrix-vector multiplication (Lee et al. [11]).

The unit step of many learning algorithms is ``y = A @ x`` computed across
``n`` workers.  Three schemes, all returning the exact product:

* **uncoded** — split ``A`` into ``n`` row blocks, one per worker; the
  master must wait for *all* workers (the straggler pays in full);
* **replication** — ``n / r`` distinct row blocks, each computed by ``r``
  workers; the master waits, per block, for the fastest replica;
* **MDS-coded** — split ``A`` into ``k < n`` row blocks, hand worker ``i``
  the coded block ``Ã_i = sum_j G_ij A_j``; any ``k`` finished workers
  determine ``y`` by solving a k x k system per column group.

Encoding happens once at setup time (it is amortized across the many
iterations of an outer algorithm such as gradient descent); each
``multiply`` call samples worker completion times from the latency model
and reports both the exact product and the simulated wall-clock makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.mds import MDSCode, MDSError


@dataclass
class MatVecOutcome:
    """One simulated distributed multiply.

    Attributes:
        y: the exact product ``A @ x``.
        time: simulated completion time (when the master can proceed).
        waited_for: worker indices whose results the master used.
        worker_times: every worker's sampled completion time.
    """

    y: np.ndarray
    time: float
    waited_for: List[int]
    worker_times: np.ndarray


def _split_rows(num_rows: int, blocks: int) -> List[slice]:
    """Even contiguous row split; first ``num_rows % blocks`` get one extra."""
    base, extra = divmod(num_rows, blocks)
    out, pos = [], 0
    for i in range(blocks):
        size = base + (1 if i < extra else 0)
        out.append(slice(pos, pos + size))
        pos += size
    return out


class _SchemeBase:
    """Common plumbing: row splitting, latency sampling, work accounting."""

    #: per-worker work as a fraction of A's rows (drives the latency model).
    work_per_worker: float

    def __init__(
        self,
        a_matrix: np.ndarray,
        num_workers: int,
        latency: Optional[ShiftedExponential] = None,
    ) -> None:
        a_matrix = np.asarray(a_matrix, dtype=np.float64)
        if a_matrix.ndim != 2:
            raise ValueError(f"A must be 2-D, got shape {a_matrix.shape}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if a_matrix.shape[0] < num_workers:
            raise ValueError(
                f"A has {a_matrix.shape[0]} rows < {num_workers} workers"
            )
        self.a_matrix = a_matrix
        self.num_workers = num_workers
        self.latency = latency or ShiftedExponential()

    def _sample_times(self, rng: np.random.Generator) -> np.ndarray:
        return self.latency.sample(
            self.num_workers, rng, work=self.work_per_worker
        )

    def expected_time(self) -> float:
        """Closed-form expected makespan (overridden per scheme)."""
        raise NotImplementedError

    def multiply(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> MatVecOutcome:
        """Compute ``A @ x`` under one sampled straggler pattern."""
        raise NotImplementedError


class UncodedMatVec(_SchemeBase):
    """One row block per worker; the master waits for everyone."""

    name = "uncoded"

    def __init__(self, a_matrix, num_workers, latency=None) -> None:
        super().__init__(a_matrix, num_workers, latency)
        self.slices = _split_rows(self.a_matrix.shape[0], num_workers)
        self.work_per_worker = 1.0 / num_workers

    def expected_time(self) -> float:
        return self.latency.expected_max_of_n(
            self.num_workers, work=self.work_per_worker
        )

    def multiply(self, x, rng) -> MatVecOutcome:
        times = self._sample_times(rng)
        parts = [self.a_matrix[s] @ x for s in self.slices]
        return MatVecOutcome(
            y=np.concatenate(parts, axis=0),
            time=float(times.max()),
            waited_for=list(range(self.num_workers)),
            worker_times=times,
        )


class ReplicatedMatVec(_SchemeBase):
    """Each of ``n / r`` row blocks is computed by ``r`` workers.

    The master waits, per block, for the fastest of its ``r`` replicas;
    the makespan is the max over blocks of that min.
    """

    name = "replication"

    def __init__(self, a_matrix, num_workers, replication=2, latency=None):
        super().__init__(a_matrix, num_workers, latency)
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if num_workers % replication != 0:
            raise ValueError(
                f"num_workers ({num_workers}) must be divisible by "
                f"replication ({replication})"
            )
        self.replication = replication
        self.num_blocks = num_workers // replication
        self.slices = _split_rows(self.a_matrix.shape[0], self.num_blocks)
        # Worker i computes block i mod num_blocks.
        self.block_of_worker = [i % self.num_blocks for i in range(num_workers)]
        self.work_per_worker = 1.0 / self.num_blocks

    def expected_time(self) -> float:
        """Expected max-over-blocks of the fastest replica.

        For the iid shifted-exponential the min of ``r`` replicas is
        ``Exp(r * rate)`` over the common shift, and the max over blocks
        adds ``H_b / (r * rate)`` — exact.  Heterogeneous models have no
        closed form; fall back to Monte Carlo over the same semantics.
        """
        if not isinstance(self.latency, ShiftedExponential):
            rng = np.random.default_rng(0)
            totals = []
            for _ in range(3000):
                times = self._sample_times(rng)
                per_block = [
                    min(
                        times[w]
                        for w in range(self.num_workers)
                        if self.block_of_worker[w] == b
                    )
                    for b in range(self.num_blocks)
                ]
                totals.append(max(per_block))
            return float(np.mean(totals))
        scaled = ShiftedExponential(
            shift=self.latency.shift, rate=self.latency.rate * self.replication
        )
        return scaled.expected_max_of_n(
            self.num_blocks, work=self.work_per_worker
        )

    def multiply(self, x, rng) -> MatVecOutcome:
        times = self._sample_times(rng)
        first_done: List[int] = []
        for b in range(self.num_blocks):
            replicas = [
                w for w in range(self.num_workers)
                if self.block_of_worker[w] == b
            ]
            first_done.append(min(replicas, key=lambda w: times[w]))
        parts = [self.a_matrix[self.slices[b]] @ x for b in range(self.num_blocks)]
        return MatVecOutcome(
            y=np.concatenate(parts, axis=0),
            time=float(max(times[w] for w in first_done)),
            waited_for=first_done,
            worker_times=times,
        )


class CodedMatVec(_SchemeBase):
    """(n, k) MDS-coded multiplication: wait for the fastest k workers.

    ``A`` splits into ``k`` row blocks; worker ``i`` holds the coded block
    ``Ã_i`` and returns ``Ã_i @ x``.  Row blocks are padded to a common
    height so encoding is a clean tensor contraction; padding rows are
    zero and are dropped after decoding.
    """

    name = "coded"

    def __init__(
        self,
        a_matrix,
        num_workers,
        recovery_threshold: Optional[int] = None,
        latency=None,
        code: Optional[MDSCode] = None,
    ) -> None:
        super().__init__(a_matrix, num_workers, latency)
        k = recovery_threshold if recovery_threshold is not None else max(
            1, (4 * num_workers) // 5
        )
        if not 1 <= k <= num_workers:
            raise ValueError(
                f"recovery threshold must be in [1, n={num_workers}], got {k}"
            )
        self.k = k
        self.code = code or MDSCode(num_workers, k)
        if (self.code.n, self.code.k) != (num_workers, k):
            raise MDSError(
                f"code is ({self.code.n}, {self.code.k}), expected "
                f"({num_workers}, {k})"
            )
        rows = self.a_matrix.shape[0]
        self.block_rows = -(-rows // k)  # ceil division
        padded = np.zeros((k * self.block_rows, self.a_matrix.shape[1]))
        padded[:rows] = self.a_matrix
        blocks = padded.reshape(k, self.block_rows, -1)
        self.coded_blocks = self.code.encode(blocks)  # (n, block_rows, d)
        self.work_per_worker = 1.0 / k  # each block is 1/k of A's rows

    def expected_time(self) -> float:
        return self.latency.expected_kth_of_n(
            self.k, self.num_workers, work=self.work_per_worker
        )

    def multiply(self, x, rng) -> MatVecOutcome:
        times = self._sample_times(rng)
        fastest = np.argsort(times, kind="stable")[: self.k]
        waited = sorted(int(w) for w in fastest)
        coded_results = np.stack(
            [self.coded_blocks[w] @ x for w in waited], axis=0
        )
        decoded = self.code.decode(coded_results, waited)
        y = decoded.reshape(self.k * self.block_rows, *decoded.shape[2:])
        rows = self.a_matrix.shape[0]
        return MatVecOutcome(
            y=y[:rows],
            time=float(times[fastest[-1]]),
            waited_for=waited,
            worker_times=times,
        )


def make_scheme(
    name: str,
    a_matrix: np.ndarray,
    num_workers: int,
    latency: Optional[ShiftedExponential] = None,
    **kwargs,
) -> _SchemeBase:
    """Factory: ``"uncoded"``, ``"replication"``, or ``"coded"``."""
    table = {
        "uncoded": UncodedMatVec,
        "replication": ReplicatedMatVec,
        "coded": CodedMatVec,
    }
    if name not in table:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(table)}"
        )
    return table[name](a_matrix, num_workers, latency=latency, **kwargs)
