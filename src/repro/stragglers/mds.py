"""Real-valued (n, k) MDS erasure codes for coded computation [11].

Coded computation works over the reals: data blocks are matrices, encoding
is a linear combination, and decoding solves a small linear system.  An
``(n, k)`` code here is a generator matrix ``G`` (n x k) every ``k`` rows of
which are linearly independent — the MDS property — so the original ``k``
blocks are recoverable from *any* ``k`` coded blocks.

Two constructions:

* ``"systematic"`` (default) — ``G = [I_k ; P]`` with ``P`` a seeded
  Gaussian ((n-k) x k).  The first ``k`` coded blocks *are* the data (no
  decode needed when no straggler is erased), and random ``P`` makes every
  square submatrix nonsingular with probability 1 while staying well
  conditioned at practical sizes.
* ``"vandermonde"`` — ``G_ij = x_i^j`` with distinct positive nodes
  ``x_i = 1 + i/n``; every square submatrix of such a totally positive
  matrix is nonsingular, giving a deterministic MDS guarantee (at the cost
  of conditioning for large k).

Decoding solves ``G[S] @ D = C[S]`` for the data blocks ``D`` given any
index set ``S`` of ``k`` received blocks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class MDSError(ValueError):
    """Raised on invalid code parameters or undecodable inputs."""


class MDSCode:
    """An (n, k) MDS code over the reals.

    Args:
        n: total number of coded blocks (workers).
        k: number of data blocks; any ``k`` coded blocks decode.
        construction: ``"systematic"`` or ``"vandermonde"``.
        seed: seed for the systematic construction's Gaussian parity.
    """

    def __init__(
        self,
        n: int,
        k: int,
        construction: str = "systematic",
        seed: int = 2017,
    ) -> None:
        if k < 1:
            raise MDSError(f"k must be >= 1, got {k}")
        if n < k:
            raise MDSError(f"need n >= k, got n={n}, k={k}")
        self.n = n
        self.k = k
        self.construction = construction
        if construction == "systematic":
            rng = np.random.default_rng(seed)
            parity = rng.standard_normal((n - k, k))
            self.generator = np.vstack([np.eye(k), parity])
        elif construction == "vandermonde":
            nodes = 1.0 + np.arange(n) / n
            self.generator = np.vander(nodes, N=k, increasing=True)
        else:
            raise MDSError(f"unknown construction {construction!r}")

    @property
    def is_systematic(self) -> bool:
        return self.construction == "systematic"

    def encode(self, blocks: np.ndarray) -> np.ndarray:
        """Encode ``k`` stacked data blocks into ``n`` coded blocks.

        Args:
            blocks: array of shape ``(k, ...)`` — the leading axis indexes
                data blocks; trailing axes are the block payload.

        Returns:
            Array of shape ``(n, ...)``: coded block ``i`` is
            ``sum_j G[i, j] * blocks[j]``.
        """
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.shape[0] != self.k:
            raise MDSError(
                f"expected {self.k} data blocks, got {blocks.shape[0]}"
            )
        flat = blocks.reshape(self.k, -1)
        coded = self.generator @ flat
        return coded.reshape((self.n,) + blocks.shape[1:])

    def decode(
        self, received: np.ndarray, indices: Sequence[int]
    ) -> np.ndarray:
        """Recover the ``k`` data blocks from any ``k`` coded blocks.

        Args:
            received: array of shape ``(k, ...)`` holding the coded blocks
                listed in ``indices`` (same order).
            indices: which coded blocks were received; exactly ``k``
                distinct values in ``range(n)``.

        Returns:
            The data blocks, shape ``(k, ...)``.
        """
        idx = list(indices)
        if len(idx) != self.k or len(set(idx)) != self.k:
            raise MDSError(
                f"need exactly k={self.k} distinct indices, got {idx}"
            )
        if not all(0 <= i < self.n for i in idx):
            raise MDSError(f"indices out of range(n={self.n}): {idx}")
        received = np.asarray(received, dtype=np.float64)
        if received.shape[0] != self.k:
            raise MDSError(
                f"expected {self.k} received blocks, got {received.shape[0]}"
            )
        sub = self.generator[idx, :]
        flat = received.reshape(self.k, -1)
        data = np.linalg.solve(sub, flat)
        return data.reshape(received.shape)

    def decoding_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """The inverse map applied by :meth:`decode` for ``indices``.

        Useful when many payloads share one erasure pattern: precompute
        once, apply with a matmul.
        """
        idx = list(indices)
        if len(idx) != self.k or len(set(idx)) != self.k:
            raise MDSError(
                f"need exactly k={self.k} distinct indices, got {idx}"
            )
        sub = self.generator[idx, :]
        return np.linalg.inv(sub)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MDSCode(n={self.n}, k={self.k}, "
            f"construction={self.construction!r})"
        )
