"""Coded distributed gradient descent for linear regression [11].

The workload the paper's introduction cites: gradient descent for
``min_x ||A x - b||^2`` where the per-iteration gradient

    ``g_t = 2 A^T (A x_t - b)``

is computed distributedly — one coded matvec for ``u = A x_t`` and one for
``A^T u'``.  Stragglers hit every iteration, so the scheme's expected
makespan compounds over iterations; [11] reports MDS coding cutting the
average run time of exactly this loop by 31.3%–35.7%.

All schemes compute the *exact* gradient (coding is lossless), so iterates
are identical across schemes; only the simulated time differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.matmul import make_scheme


@dataclass
class GradientDescentRun:
    """Outcome of one simulated distributed GD run.

    Attributes:
        x: the final iterate.
        losses: ``||A x_t - b||^2`` per iteration (monitoring).
        iteration_times: simulated seconds per iteration.
        scheme: which distribution scheme produced the timings.
    """

    x: np.ndarray
    losses: List[float] = field(default_factory=list)
    iteration_times: List[float] = field(default_factory=list)
    scheme: str = "uncoded"

    @property
    def total_time(self) -> float:
        return float(sum(self.iteration_times))

    @property
    def mean_iteration_time(self) -> float:
        return self.total_time / max(len(self.iteration_times), 1)


def coded_least_squares(
    a_matrix: np.ndarray,
    b: np.ndarray,
    num_workers: int,
    scheme: str = "coded",
    iterations: int = 50,
    step: Optional[float] = None,
    latency: Optional[ShiftedExponential] = None,
    seed: int = 0,
    **scheme_kwargs,
) -> GradientDescentRun:
    """Distributed GD for ``min ||A x - b||^2`` with simulated stragglers.

    Both per-iteration products (``A x`` and ``A^T u``) run on the chosen
    scheme; each draws a fresh straggler pattern.  The two operators are
    encoded independently (as in [11], the encoding is a one-time setup
    cost shared by all iterations).

    Args:
        a_matrix: design matrix (m x d).
        b: targets (m,).
        num_workers: workers per operator.
        scheme: ``"uncoded"``, ``"replication"``, or ``"coded"``.
        iterations: GD steps.
        step: learning rate; default ``1 / (2 * sigma_max(A)^2)``, which
            guarantees monotone convergence for this quadratic.
        latency: straggler model (default shift=1, rate=1).
        seed: RNG seed for latency sampling.
        **scheme_kwargs: forwarded to the scheme constructor (e.g.
            ``recovery_threshold`` or ``replication``).

    Returns:
        The run record (identical iterates for every scheme; timings vary).
    """
    a_matrix = np.asarray(a_matrix, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a_matrix.ndim != 2 or b.ndim != 1 or b.shape[0] != a_matrix.shape[0]:
        raise ValueError(
            f"shape mismatch: A {a_matrix.shape}, b {b.shape}"
        )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    fwd = make_scheme(scheme, a_matrix, num_workers, latency=latency, **scheme_kwargs)
    bwd = make_scheme(scheme, a_matrix.T, num_workers, latency=latency, **scheme_kwargs)
    if step is None:
        smax = np.linalg.norm(a_matrix, ord=2)
        step = 1.0 / (2.0 * smax * smax)
    rng = np.random.default_rng(seed)

    x = np.zeros(a_matrix.shape[1])
    run = GradientDescentRun(x=x, scheme=scheme)
    for _ in range(iterations):
        out_fwd = fwd.multiply(x, rng)
        residual = out_fwd.y - b
        out_bwd = bwd.multiply(residual, rng)
        gradient = 2.0 * out_bwd.y
        x = x - step * gradient
        run.losses.append(float(residual @ residual))
        run.iteration_times.append(out_fwd.time + out_bwd.time)
    run.x = x
    return run
