"""Experiment harness for the straggler-coding comparison ([11]'s result).

The paper's introduction reports that MDS-coded computation reduces the
average run time of distributed gradient descent by 31.3%–35.7% relative
to waiting for every worker.  :func:`straggler_comparison` regenerates
that comparison on the shifted-exponential model: uncoded, r-replication,
and (n, k) MDS per-iteration times, analytic and simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.regression import coded_least_squares


@dataclass
class StragglerExperiment:
    """One scheme's measured and predicted timings.

    Attributes:
        scheme: scheme label ("uncoded", "replication", "coded").
        mean_iteration_time: simulated average seconds per GD iteration.
        expected_iteration_time: closed-form expectation (two matvecs).
        final_loss: terminal ``||Ax-b||^2`` (identical across schemes).
        reduction_vs_uncoded: fractional time saved against uncoded
            (filled by :func:`straggler_comparison`).
    """

    scheme: str
    mean_iteration_time: float
    expected_iteration_time: float
    final_loss: float
    reduction_vs_uncoded: Optional[float] = None


def straggler_comparison(
    num_workers: int = 10,
    recovery_threshold: int = 7,
    replication: int = 2,
    rows: int = 400,
    cols: int = 20,
    iterations: int = 50,
    latency: Optional[ShiftedExponential] = None,
    seed: int = 7,
) -> List[StragglerExperiment]:
    """Run GD under all three schemes on one synthetic regression problem.

    Defaults follow [11]'s regime: n = 10 workers, a (10, 7) MDS code,
    2-replication, and a shifted-exponential with shift 1 and rate 0.5
    (straggling tail twice the service time).  Closed forms there give

        uncoded  (1/10)(1 + 2 H_10)        ~ 0.686 / matvec
        coded    (1/7) (1 + 2 (H_10-H_3))  ~ 0.456 / matvec

    a ~33.5% saving — inside the 31.3%–35.7% band [11] reports.

    Args:
        num_workers: workers per distributed operator.
        recovery_threshold: MDS ``k`` (wait for fastest k of n).
        replication: replication factor (must divide ``num_workers``).
        rows / cols: synthetic design-matrix size.
        iterations: GD steps per run.
        latency: straggler model; default ``ShiftedExponential(1, 1)``.
        seed: seeds both the problem and the latency draws.

    Returns:
        One :class:`StragglerExperiment` per scheme, uncoded first, with
        ``reduction_vs_uncoded`` filled in.
    """
    latency = latency or ShiftedExponential(shift=1.0, rate=0.5)
    rng = np.random.default_rng(seed)
    a_matrix = rng.standard_normal((rows, cols))
    x_true = rng.standard_normal(cols)
    b = a_matrix @ x_true + 0.01 * rng.standard_normal(rows)

    def expected(scheme_obj) -> float:
        # One GD iteration = forward + backward matvec.
        return 2.0 * scheme_obj.expected_time()

    from repro.stragglers.matmul import make_scheme

    results: List[StragglerExperiment] = []
    configs = (
        ("uncoded", {}),
        ("replication", {"replication": replication}),
        ("coded", {"recovery_threshold": recovery_threshold}),
    )
    for scheme, kwargs in configs:
        run = coded_least_squares(
            a_matrix,
            b,
            num_workers,
            scheme=scheme,
            iterations=iterations,
            latency=latency,
            seed=seed,
            **kwargs,
        )
        probe = make_scheme(scheme, a_matrix, num_workers, latency=latency, **kwargs)
        results.append(
            StragglerExperiment(
                scheme=scheme,
                mean_iteration_time=run.mean_iteration_time,
                expected_iteration_time=expected(probe),
                final_loss=run.losses[-1],
            )
        )
    base = results[0].mean_iteration_time
    for res in results:
        res.reduction_vs_uncoded = 1.0 - res.mean_iteration_time / base
    return results


def render_straggler_table(
    results: List[StragglerExperiment], markdown: bool = False
) -> str:
    """Console/markdown table for the comparison (used by CLI and bench)."""
    from repro.utils.tables import format_table

    headers = [
        "scheme",
        "mean iter (s)",
        "expected iter (s)",
        "saving vs uncoded",
    ]
    rows = [
        [
            r.scheme,
            r.mean_iteration_time,
            r.expected_iteration_time,
            f"{100 * (r.reduction_vs_uncoded or 0):.1f}%",
        ]
        for r in results
    ]
    return format_table(headers, rows, decimals=3, markdown=markdown)
