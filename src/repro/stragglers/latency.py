"""The straggler latency model of Lee et al. [11].

Each worker's time to finish a unit task is ``shift + Exp(rate)``: a
deterministic service time plus an exponential straggling tail.  The model
is analytically convenient — the expected time until the ``k``-th of ``n``
workers finishes has the closed form

    ``E[T_(k)] = shift + (H_n - H_{n-k}) / rate``

(``H_m`` the m-th harmonic number), which is what makes the coded-versus-
uncoded trade quantitative: waiting for all ``n`` costs ``H_n / rate`` of
tail, waiting for any ``k`` only ``(H_n - H_{n-k}) / rate``.

Task sizes scale the whole distribution: a worker given ``w`` units of
work draws ``w * (shift + Exp(rate))``, i.e. both the service time and the
straggling tail stretch with the workload, as in [11].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def harmonic(m: int) -> float:
    """The m-th harmonic number ``H_m = sum_{i=1..m} 1/i`` (``H_0 = 0``)."""
    if m < 0:
        raise ValueError(f"harmonic number needs m >= 0, got {m}")
    # Exact summation; m stays small (worker counts) so no asymptotics.
    return float(np.sum(1.0 / np.arange(1, m + 1))) if m else 0.0


@dataclass(frozen=True)
class ShiftedExponential:
    """Per-unit-work completion time ``shift + Exp(rate)``.

    Attributes:
        shift: deterministic service seconds per unit of work (> 0).
        rate: straggling rate λ; the exponential tail has mean ``1/rate``.
    """

    shift: float = 1.0
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.shift < 0:
            raise ValueError(f"shift must be >= 0, got {self.shift}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def sample(
        self, num_workers: int, rng: np.random.Generator, work: float = 1.0
    ) -> np.ndarray:
        """Draw one completion time per worker for ``work`` units each."""
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if work <= 0:
            raise ValueError(f"work must be > 0, got {work}")
        tail = rng.exponential(scale=1.0 / self.rate, size=num_workers)
        return work * (self.shift + tail)

    def mean(self, work: float = 1.0) -> float:
        """Expected completion time of a single worker."""
        return work * (self.shift + 1.0 / self.rate)

    def expected_kth_of_n(self, k: int, n: int, work: float = 1.0) -> float:
        """``E[T_(k)]``: expected time until ``k`` of ``n`` workers finish.

        The k-th order statistic of n iid exponentials has expectation
        ``(H_n - H_{n-k}) / rate``; the shift is common to all workers.
        """
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        return work * (self.shift + (harmonic(n) - harmonic(n - k)) / self.rate)

    def expected_max_of_n(self, n: int, work: float = 1.0) -> float:
        """Expected time until *all* ``n`` workers finish (uncoded wait)."""
        return self.expected_kth_of_n(n, n, work=work)


@dataclass(frozen=True)
class HeterogeneousLatency:
    """Per-worker speed factors over a shared shifted-exponential base.

    [11] models identical machines; real fleets are heterogeneous (mixed
    instance generations, noisy neighbours).  Worker ``i`` draws
    ``speed[i] * work * (shift + Exp(rate))`` — a persistently slow
    machine, not just an unlucky draw.  Coded schemes shine here: the
    slow workers are *always* among the stragglers the code ignores,
    while the uncoded scheme pays for the slowest machine every time.

    Attributes:
        speeds: per-worker time multipliers (1.0 = nominal; 2.0 = half
            speed).  Length fixes the worker count.
        base: the shared shifted-exponential component.
    """

    speeds: tuple
    base: ShiftedExponential = ShiftedExponential()

    def __post_init__(self) -> None:
        if len(self.speeds) == 0:
            raise ValueError("need at least one worker speed")
        if any(s <= 0 for s in self.speeds):
            raise ValueError(f"speeds must be positive, got {self.speeds}")

    @property
    def num_workers(self) -> int:
        return len(self.speeds)

    def sample(
        self, num_workers: int, rng: np.random.Generator, work: float = 1.0
    ) -> np.ndarray:
        """Draw one completion time per worker for ``work`` units each."""
        if num_workers != self.num_workers:
            raise ValueError(
                f"model has {self.num_workers} workers, asked for "
                f"{num_workers}"
            )
        return np.asarray(self.speeds) * self.base.sample(
            num_workers, rng, work=work
        )

    def mean(self, work: float = 1.0) -> float:
        """Fleet-average expected single-worker time."""
        return float(np.mean(self.speeds)) * self.base.mean(work=work)

    def expected_kth_of_n(
        self, k: int, n: int, work: float = 1.0, samples: int = 4000,
        seed: int = 0,
    ) -> float:
        """Monte-Carlo ``E[T_(k)]`` (no closed form for mixed scales)."""
        if not 1 <= k <= n or n != self.num_workers:
            raise ValueError(
                f"need 1 <= k <= n = num_workers, got k={k}, n={n}"
            )
        rng = np.random.default_rng(seed)
        draws = np.sort(
            np.stack(
                [self.sample(n, rng, work=work) for _ in range(samples)]
            ),
            axis=1,
        )
        return float(draws[:, k - 1].mean())

    def expected_max_of_n(
        self, n: int, work: float = 1.0, samples: int = 4000, seed: int = 0
    ) -> float:
        """Monte-Carlo expected time until every worker finishes."""
        return self.expected_kth_of_n(
            n, n, work=work, samples=samples, seed=seed
        )
