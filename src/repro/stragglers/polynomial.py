"""Polynomial codes: coded matrix *-matrix* multiplication.

MDS-coding the rows of ``A`` (:mod:`repro.stragglers.matmul`) covers
``A @ x``; for full products ``A @ B`` the optimal construction is the
polynomial code of Yu, Maddah-Ali and Avestimehr (the same group as the
paper): split ``A`` into ``m`` row blocks and ``B`` into ``n`` column
blocks, give worker ``i`` the evaluations

    ``Ã_i = sum_j A_j x_i^j``   and   ``B̃_i = sum_k B_k x_i^{j m}``

so its product ``Ã_i @ B̃_i`` is the evaluation at ``x_i`` of a matrix
polynomial of degree ``m n - 1`` whose coefficients are exactly the
blocks ``A_j @ B_k``.  *Any* ``m n`` worker results interpolate the
polynomial — the recovery threshold meets the information-theoretic
optimum, against ``m n`` for uncoded (all workers) at the same per-worker
work ``(1/m) x (1/n)`` of the product.

Over the reals, interpolation is a Vandermonde solve.  The original
construction works over finite fields where any distinct nodes are
equivalent; in float64 the node choice decides everything — equispaced
nodes blow past 1e14 condition already at degree 11, while Chebyshev
points keep the solve well conditioned (~1e4 at degree 12, ~3e5 at 16),
so workers are placed at Chebyshev points of the first kind.  Practical
degree limit in float64 is ``m n`` up to roughly 20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.stragglers.latency import ShiftedExponential
from repro.stragglers.matmul import _split_rows


class PolynomialCodeError(ValueError):
    """Raised on invalid polynomial-code parameters or inputs."""


@dataclass
class PolyMatMulOutcome:
    """One simulated coded matrix-matrix multiply.

    Attributes:
        c: the exact product ``A @ B``.
        time: simulated completion time (k-th worker order statistic).
        waited_for: the worker indices used for interpolation.
        worker_times: all sampled completion times.
    """

    c: np.ndarray
    time: float
    waited_for: List[int]
    worker_times: np.ndarray


class PolynomialCodedMatMul:
    """(n_workers; m, n) polynomial-coded ``A @ B``.

    Args:
        a_matrix: left operand, split into ``m`` row blocks.
        b_matrix: right operand, split into ``n`` column blocks.
        num_workers: total workers; must be >= ``m * n``.
        m: row-block count for ``A``.
        n: column-block count for ``B``.
        latency: straggler model (default shift=1, rate=1).
    """

    def __init__(
        self,
        a_matrix: np.ndarray,
        b_matrix: np.ndarray,
        num_workers: int,
        m: int = 2,
        n: int = 2,
        latency: Optional[ShiftedExponential] = None,
    ) -> None:
        a_matrix = np.asarray(a_matrix, dtype=np.float64)
        b_matrix = np.asarray(b_matrix, dtype=np.float64)
        if a_matrix.ndim != 2 or b_matrix.ndim != 2:
            raise PolynomialCodeError("A and B must be 2-D")
        if a_matrix.shape[1] != b_matrix.shape[0]:
            raise PolynomialCodeError(
                f"inner dimensions differ: {a_matrix.shape} @ "
                f"{b_matrix.shape}"
            )
        if m < 1 or n < 1:
            raise PolynomialCodeError(f"need m, n >= 1, got m={m}, n={n}")
        self.recovery_threshold = m * n
        if num_workers < self.recovery_threshold:
            raise PolynomialCodeError(
                f"need num_workers >= m*n = {self.recovery_threshold}, "
                f"got {num_workers}"
            )
        if a_matrix.shape[0] < m:
            raise PolynomialCodeError(
                f"A has {a_matrix.shape[0]} rows < m={m}"
            )
        if b_matrix.shape[1] < n:
            raise PolynomialCodeError(
                f"B has {b_matrix.shape[1]} cols < n={n}"
            )
        self.a_matrix = a_matrix
        self.b_matrix = b_matrix
        self.num_workers = num_workers
        self.m = m
        self.n = n
        self.latency = latency or ShiftedExponential()

        # Pad blocks to uniform size so encoding is a tensor contraction.
        rows, inner = a_matrix.shape
        cols = b_matrix.shape[1]
        self.block_rows = -(-rows // m)
        self.block_cols = -(-cols // n)
        a_pad = np.zeros((m * self.block_rows, inner))
        a_pad[:rows] = a_matrix
        b_pad = np.zeros((inner, n * self.block_cols))
        b_pad[:, :cols] = b_matrix
        a_blocks = a_pad.reshape(m, self.block_rows, inner)
        b_blocks = b_pad.reshape(inner, n, self.block_cols).transpose(1, 0, 2)

        # Chebyshev points of the first kind: distinct and, crucially,
        # well-conditioned under Vandermonde interpolation (see module
        # docstring).
        self.nodes = np.cos(
            (2 * np.arange(num_workers) + 1) * np.pi / (2 * num_workers)
        )
        # Worker i: A~(x_i) with powers x^j, B~(x_i) with powers x^(j m).
        pow_a = self.nodes[:, None] ** np.arange(m)[None, :]  # (w, m)
        pow_b = self.nodes[:, None] ** (
            self.m * np.arange(n)[None, :]
        )  # (w, n)
        self.coded_a = np.einsum("wj,jri->wri", pow_a, a_blocks)
        self.coded_b = np.einsum("wk,kic->wic", pow_b, b_blocks)
        # Per-worker work: one block-product = (1/m)(1/n) of A @ B.
        self.work_per_worker = 1.0 / self.recovery_threshold

    def expected_time(self) -> float:
        """Closed-form expected makespan (k-th of n order statistic)."""
        return self.latency.expected_kth_of_n(
            self.recovery_threshold, self.num_workers,
            work=self.work_per_worker,
        )

    def multiply(self, rng: np.random.Generator) -> PolyMatMulOutcome:
        """Compute ``A @ B`` under one sampled straggler pattern."""
        times = self.latency.sample(
            self.num_workers, rng, work=self.work_per_worker
        )
        k = self.recovery_threshold
        fastest = np.argsort(times, kind="stable")[:k]
        waited = sorted(int(w) for w in fastest)
        # Worker products: evaluations of C(x) at the waited-for nodes.
        evals = np.stack(
            [self.coded_a[w] @ self.coded_b[w] for w in waited], axis=0
        )
        # Interpolate the degree-(mn-1) matrix polynomial: solve V c = e
        # where V_ij = x_i^j over the chosen nodes.
        vand = np.vander(self.nodes[waited], N=k, increasing=True)
        flat = evals.reshape(k, -1)
        coeffs = np.linalg.solve(vand, flat).reshape(
            k, self.block_rows, self.block_cols
        )
        # Coefficient of x^(j + k m) is A_j @ B_k: reassemble the grid.
        rows, cols = (
            self.a_matrix.shape[0],
            self.b_matrix.shape[1],
        )
        c = np.zeros((self.m * self.block_rows, self.n * self.block_cols))
        for j in range(self.m):
            for kk in range(self.n):
                block = coeffs[j + kk * self.m]
                c[
                    j * self.block_rows : (j + 1) * self.block_rows,
                    kk * self.block_cols : (kk + 1) * self.block_cols,
                ] = block
        return PolyMatMulOutcome(
            c=c[:rows, :cols],
            time=float(times[fastest[-1]]),
            waited_for=waited,
            worker_times=times,
        )
