"""The calibrated cost model for the paper's EC2 testbed.

Every constant in :meth:`EC2CostModel.paper_calibrated` is fit against the
twelve table cells of the paper (Tables I-III; 12 GB, 100 Mbps, K=16/20,
r ∈ {3, 5}); the derivations are documented per field and summarized in
DESIGN.md §5.  Calibration targets *structure*, not per-cell exactness: each
cost is a physically sensible law (bytes / rate, per-group constants,
logarithmic multicast penalty) whose coefficients are chosen once and then
used unchanged for all simulated experiments, including the sweeps the paper
did not publish.

Conventions: rates are bytes/second or pairs/second; one KV pair is 100
bytes; ``r`` is the redundancy (computation load); sizes passed in are
per-node quantities unless noted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EC2CostModel:
    """Stage cost laws with EC2-calibrated coefficients.

    Attributes:
        net_rate: NIC goodput in bytes/s (paper: 100 Mbps = 12.5e6 B/s).
        unicast_overhead: fractional per-byte overhead of a TCP unicast
            (fit: Table I shuffle 945.72 s vs the 900 s ideal -> 1.052).
        unicast_setup: per-unicast setup latency in seconds.
        multicast_gamma: coefficient of the logarithmic multicast penalty
            ``m(g) = 1 + gamma * log2(g + 1)`` for ``g`` receivers (the
            paper attributes this to ``MPI_Bcast``; fit over the four coded
            shuffle cells -> 0.31).
        multicast_setup: per-multicast setup latency (tree construction).
        codegen_base: fixed CodeGen cost (index construction).
        codegen_per_group: CodeGen cost per multicast group (communicator
            splits; fit: 6.06/1820 ~ 140.91/38760 -> ~3.3 ms).
        map_rate: Map hashing throughput in pairs/s (fit: 1.86 s for 7.5 M
            pairs -> 4.1e6).
        map_slowdown: relative Map slowdown per extra redundancy unit
            (paper: Map ratios 3.2x at r=3, 5.8x at r=5 -> 0.05).
        pack_rate: serialization throughput, bytes/s (fit: 2.35 s for
            0.70 GB -> 2.95e8).
        unpack_rate: deserialization throughput, bytes/s (fit: 0.85 s).
        encode_rate: Encode-stage effective serialization throughput.
        xor_rate: XOR throughput for encode, bytes/s.
        decode_rate: Decode-stage effective throughput over recovered bytes.
        decode_packet_overhead: per received packet decode cost, seconds.
        reduce_rate: local sort throughput in pairs/s (fit: 10.47 s for
            7.5 M pairs -> 7.2e5).
        reduce_slowdown: relative Reduce slowdown per extra redundancy unit
            (memory pressure; §V-C).
        round_sync_overhead: per-round synchronization cost of the
            round-parallel shuffle (the barrier that separates two
            conflict-free rounds; a dissemination barrier of empty frames).
    """

    net_rate: float = 12.5e6
    unicast_overhead: float = 0.052
    unicast_setup: float = 1.0e-3
    multicast_gamma: float = 0.31
    multicast_setup: float = 1.0e-4
    codegen_base: float = 0.1
    codegen_per_group: float = 3.3e-3
    map_rate: float = 4.1e6
    map_slowdown: float = 0.05
    pack_rate: float = 2.95e8
    unpack_rate: float = 8.7e8
    encode_rate: float = 3.5e8
    xor_rate: float = 2.2e9
    decode_rate: float = 2.2e8
    decode_packet_overhead: float = 2.0e-5
    reduce_rate: float = 7.2e5
    reduce_slowdown: float = 0.12
    round_sync_overhead: float = 5.0e-4

    @classmethod
    def paper_calibrated(cls) -> "EC2CostModel":
        """The default calibration (all fits against Tables I-III)."""
        return cls()

    def with_overrides(self, **kwargs) -> "EC2CostModel":
        """A copy with selected coefficients replaced (ablations)."""
        return replace(self, **kwargs)

    # -- network ------------------------------------------------------------

    def unicast_time(self, nbytes: float) -> float:
        """Wall time of one serial unicast of ``nbytes``."""
        return self.unicast_setup + nbytes * (1.0 + self.unicast_overhead) / self.net_rate

    def multicast_time(self, nbytes: float, receivers: int) -> float:
        """Wall time of one application-layer multicast to ``receivers``.

        The ``1 + gamma log2(receivers + 1)`` factor reproduces the
        logarithmic growth the paper observes for ``MPI_Bcast`` (§V-C);
        ``receivers = 1`` keeps a small penalty over plain unicast, matching
        the group setup cost.
        """
        if receivers < 1:
            raise ValueError(f"receivers must be >= 1, got {receivers}")
        penalty = 1.0 + self.multicast_gamma * math.log2(receivers + 1)
        return self.multicast_setup + nbytes * penalty / self.net_rate

    # -- shuffle schedules ----------------------------------------------------

    def serial_multicast_shuffle_time(
        self, turns: int, packet_bytes: float, receivers: int
    ) -> float:
        """Wall time of the serial Fig. 9(b) shuffle.

        Every ``(group, sender)`` turn holds the fabric exclusively, so the
        shuffle is the straight sum of its ``C(K, r+1) * (r+1)`` multicasts.
        """
        if turns < 0:
            raise ValueError(f"turns must be >= 0, got {turns}")
        return turns * self.multicast_time(packet_bytes, receivers)

    def parallel_multicast_shuffle_time(
        self, num_rounds: int, packet_bytes: float, receivers: int
    ) -> float:
        """Wall time of the round-*synchronized* parallel shuffle model.

        Node-disjoint multicasts of a round transmit concurrently, each
        round costing one multicast plus an inter-round barrier; with
        greedy packing ``num_rounds`` approaches
        ``turns / floor(K / (r+1))`` (see
        :meth:`repro.core.groups.CodingPlan.parallel_rounds`).  The real
        pipelined engine runs the same rounds *without* barriers, so its
        measured wall-clock can land below this model (no sync cost) or
        above it (NIC contention when nodes drift across rounds).
        """
        if num_rounds < 0:
            raise ValueError(f"num_rounds must be >= 0, got {num_rounds}")
        per_round = (
            self.multicast_time(packet_bytes, receivers)
            + self.round_sync_overhead
        )
        return num_rounds * per_round

    # -- compute stages -------------------------------------------------------

    def codegen_time(self, num_groups: int) -> float:
        """CodeGen: proportional to the ``C(K, r+1)`` multicast groups."""
        return self.codegen_base + self.codegen_per_group * num_groups

    def map_time(self, pairs_hashed: float, redundancy: int) -> float:
        """Hashing ``pairs_hashed`` KV pairs at redundancy ``r``.

        The mild super-linearity (cache/memory pressure) reproduces the
        paper's 3.2x / 5.8x Map ratios at r = 3 / 5.
        """
        slow = 1.0 + self.map_slowdown * (redundancy - 1)
        return pairs_hashed * slow / self.map_rate

    def pack_time(self, nbytes: float) -> float:
        """Serializing ``nbytes`` of outgoing intermediate values."""
        return nbytes / self.pack_rate

    def unpack_time(self, nbytes: float) -> float:
        """Deserializing ``nbytes`` of received intermediate values."""
        return nbytes / self.unpack_rate

    def encode_time(self, serialize_bytes: float, xor_bytes: float) -> float:
        """Encode: serialization of retained values plus segment XORs."""
        return serialize_bytes / self.encode_rate + xor_bytes / self.xor_rate

    def decode_time(self, recovered_bytes: float, packets: int) -> float:
        """Decode: XOR-peeling/merging plus per-packet bookkeeping."""
        return (
            recovered_bytes / self.decode_rate
            + packets * self.decode_packet_overhead
        )

    def reduce_time(self, pairs_sorted: float, redundancy: int) -> float:
        """Local sort of ``pairs_sorted`` pairs at redundancy ``r``."""
        slow = 1.0 + self.reduce_slowdown * (redundancy - 1)
        return pairs_sorted * slow / self.reduce_rate

    # -- streaming overlap ----------------------------------------------------

    def overlapped_makespan(
        self,
        compute_time: float,
        comm_time: float,
        windows: int = 16,
    ) -> float:
        """Makespan of a compute phase overlapped with its communication.

        The streaming-overlap execution ships each of ``windows`` compute
        windows' traffic the moment the window completes, so communication
        rides behind the remaining compute instead of following it:

        * communication-bound (``comm > compute``): the network is busy
          from (roughly) the first window on, so the makespan is one
          window of compute to prime the pipeline plus the full
          communication time — ``compute/windows + comm``;
        * compute-bound: the transfers hide entirely behind compute except
          the last window's traffic, which has nothing left to hide
          behind — ``compute + comm/windows``.

        Both regimes are the same expression
        ``max(compute, comm) + min(compute, comm)/windows``, which also
        degrades gracefully to the staged ``compute + comm`` at
        ``windows = 1``.  Compared against measurement: ``compute`` is
        the per-node critical-path compute (map + sort/merge work that
        the engine interleaves), ``comm`` the *overlapped* transfer time
        (e.g. serial shuffle seconds divided by ``K`` for the uncoded
        engine, whose all-to-all traffic flows concurrently under
        per-node egress pacing, instead of one turn at a time).
        """
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        if compute_time < 0 or comm_time < 0:
            raise ValueError(
                f"times must be >= 0, got compute={compute_time}, "
                f"comm={comm_time}"
            )
        return (
            max(compute_time, comm_time)
            + min(compute_time, comm_time) / windows
        )

    def uncoded_overlap_speedup(
        self,
        compute_time: float,
        serial_shuffle_time: float,
        num_nodes: int,
        windows: int = 16,
    ) -> float:
        """Predicted staged/overlap makespan ratio for the uncoded sort.

        The staged baseline serializes the shuffle turn by turn (one
        sender at a time holds the fabric), so its makespan is
        ``compute + shuffle``; the overlapped engine streams all ``K``
        senders concurrently, compressing the transfer span to roughly
        ``shuffle / K`` under per-node egress pacing, and hides it
        behind compute.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        staged = compute_time + serial_shuffle_time
        overlapped = self.overlapped_makespan(
            compute_time, serial_shuffle_time / num_nodes, windows
        )
        return staged / overlapped if overlapped > 0 else float("inf")
