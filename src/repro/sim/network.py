"""Network model for the simulator.

The paper's shuffles are *serial*: only one node transmits at any instant
(Fig. 9), which we model with a single FIFO token resource covering the
whole fabric.  The asynchronous/parallel variant the paper lists as future
work is modelled with per-node NIC resources instead: transfers contend for
their sender's and receivers' NICs but independent pairs proceed
concurrently.

Transfer durations come from the cost model; each transfer is a real event
in the DES (acquire resources, hold for the transfer time, release), so
shuffle-stage times *emerge* from event execution rather than a closed-form
sum — the closed forms are used by tests to validate the simulator.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.costmodel import EC2CostModel
from repro.sim.des import Environment, Event, MultiLock, Resource, SimGenerator


class NetworkModel:
    """Fabric of K nodes with serial or parallel transfer scheduling.

    Args:
        env: the simulation environment.
        num_nodes: K.
        cost: the cost model supplying transfer durations.
        serial: if True (paper's setting), a single global token serializes
            every transfer; if False, per-node NICs are the only contention.
    """

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        cost: EC2CostModel,
        serial: bool = True,
    ) -> None:
        self.env = env
        self.num_nodes = num_nodes
        self.cost = cost
        self.serial = serial
        self._token: Optional[Resource] = Resource(env, 1) if serial else None
        self._nics: MultiLock = MultiLock(env, num_nodes)
        # Telemetry: transfers completed, busy time, per-kind byte counts.
        self.transfers = 0
        self.busy_time = 0.0
        self.unicast_payload = 0.0
        self.multicast_payload = 0.0

    # -- transfer processes -----------------------------------------------------

    def unicast(self, src: int, dst: int, nbytes: float) -> SimGenerator:
        """Process: one unicast of ``nbytes`` from src to dst."""
        self._check(src)
        self._check(dst)
        duration = self.cost.unicast_time(nbytes)
        yield from self._transfer([src, dst], duration)
        self.unicast_payload += nbytes
        return duration

    def multicast(
        self, src: int, dsts: Sequence[int], nbytes: float
    ) -> SimGenerator:
        """Process: one application-layer multicast of ``nbytes``."""
        self._check(src)
        for d in dsts:
            self._check(d)
        duration = self.cost.multicast_time(nbytes, len(dsts))
        yield from self._transfer([src, *dsts], duration)
        self.multicast_payload += nbytes
        return duration

    def batched_hold(
        self,
        participants: Iterable[int],
        duration: float,
        payload: float = 0.0,
        kind: str = "unicast",
    ) -> SimGenerator:
        """Process: hold the fabric for a pre-summed duration.

        Used by the coarse event-granularity mode (whole sender turns as one
        event) — total times and payload telemetry are identical to
        per-transfer mode; only the event count changes.
        """
        yield from self._transfer(list(participants), duration)
        if kind == "multicast":
            self.multicast_payload += payload
        else:
            self.unicast_payload += payload
        return duration

    # -- internals -----------------------------------------------------------------

    def _transfer(self, participants: List[int], duration: float) -> SimGenerator:
        if self.serial:
            assert self._token is not None
            yield self._token.request()
            yield self.env.timeout(duration)
            self._token.release()
        else:
            # All-or-nothing NIC acquisition: incremental locking (even in a
            # global order) makes a waiting transfer hold NICs it is not yet
            # using, convoying overlapping transfers into a serial chain.
            nodes = sorted(set(participants))
            yield self._nics.acquire(nodes)
            yield self.env.timeout(duration)
            self._nics.release(nodes)
        self.transfers += 1
        self.busy_time += duration

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range({self.num_nodes})")
