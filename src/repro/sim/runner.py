"""Public simulator entry points.

``simulate_terasort`` / ``simulate_coded_terasort`` reproduce one table row
each: they build the DES, run every node process to completion, and return a
:class:`SimReport` with the per-stage breakdown (max over nodes, like the
paper's tables), totals, and fabric telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.groups import (
    build_coding_plan,
    round_schedule,
    unicast_round_schedule,
)
from repro.sim.costmodel import EC2CostModel
from repro.sim.des import Barrier, Environment
from repro.sim.network import NetworkModel
from repro.sim.stages import (
    STAGE_ORDER_CODED,
    STAGE_ORDER_UNCODED,
    _StageTable,
    _check_granularity,
    coded_terasort_node,
    terasort_node,
)
from repro.sim.workload import CodedWorkload, UncodedWorkload
from repro.utils.timer import StageTimes

#: The paper's workload: 12 GB = 120 M KV pairs (§V-B).
PAPER_RECORDS = 120_000_000


@dataclass
class SimReport:
    """Outcome of one simulated run.

    Attributes:
        algorithm: "terasort" or "coded_terasort".
        stage_times: per-stage breakdown (max over nodes) + total.
        num_nodes / redundancy / n_records: the configuration.
        transfers: network transfers executed by the DES.
        shuffle_payload_bytes: total payload moved in the shuffle stage
            (multicast counted once — the paper's load convention).
        meta: extra diagnostics.
    """

    algorithm: str
    stage_times: StageTimes
    num_nodes: int
    redundancy: int
    n_records: int
    transfers: int
    shuffle_payload_bytes: float
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.stage_times.total

    def row(self) -> List[float]:
        """Stage seconds in table order plus the total (Tables I-III rows)."""
        return self.stage_times.as_row()


def _resolve_schedule(
    schedule: Optional[str], serial: bool, granularity: str
) -> str:
    """Back-compat resolution of the shuffle schedule mode.

    ``schedule`` wins when given; otherwise the legacy ``serial`` flag maps
    to ``"serial"`` / ``"parallel"``.  Rounds mode needs per-transfer
    events (a round is a set of individually simulated transfers).
    """
    if schedule is None:
        schedule = "serial" if serial else "parallel"
    if schedule not in ("serial", "parallel", "rounds"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if schedule == "rounds" and granularity != "transfer":
        raise ValueError("schedule='rounds' requires granularity='transfer'")
    return schedule


def simulate_terasort(
    num_nodes: int,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
    serial: bool = True,
    granularity: str = "transfer",
    schedule: Optional[str] = None,
) -> SimReport:
    """Simulate TeraSort at the paper's scale (Table I / top rows of II-III).

    Args:
        num_nodes: ``K`` workers.
        n_records: dataset size in 100-byte records (default: 12 GB).
        cost: cost model (default: the paper calibration).
        serial: serial unicast schedule (paper) vs parallel ablation
            (legacy flag; ignored when ``schedule`` is given).
        granularity: ``"transfer"`` (event per unicast) or ``"turn"``.
        schedule: ``"serial"`` (paper, Fig. 9(a)), ``"parallel"`` (all
            senders contend for NICs), or ``"rounds"`` (conflict-free
            1-factorization rounds — the scheduled-parallel future work).

    Returns:
        The simulated :class:`SimReport`.
    """
    _check_granularity(granularity)
    schedule = _resolve_schedule(schedule, serial, granularity)
    cost = cost or EC2CostModel.paper_calibrated()
    work = UncodedWorkload(num_nodes=num_nodes, n_records=n_records)
    rounds = (
        unicast_round_schedule(num_nodes) if schedule == "rounds" else None
    )
    env = Environment()
    net = NetworkModel(env, num_nodes, cost, serial=schedule == "serial")
    barrier = Barrier(env, num_nodes)
    table = _StageTable(num_nodes)
    for rank in range(num_nodes):
        env.process(
            terasort_node(
                env, rank, work, cost, net, barrier, table, granularity,
                rounds=rounds,
            )
        )
    env.run()
    stage_times = StageTimes.merge_max(STAGE_ORDER_UNCODED, table.per_node)
    return SimReport(
        algorithm="terasort",
        stage_times=stage_times,
        num_nodes=num_nodes,
        redundancy=1,
        n_records=n_records,
        transfers=net.transfers,
        shuffle_payload_bytes=net.unicast_payload,
        meta={
            "serial": schedule == "serial",
            "schedule": schedule,
            "granularity": granularity,
            "fabric_busy_time": net.busy_time,
            "sim_end_time": env.now,
        },
    )


def simulate_coded_terasort(
    num_nodes: int,
    redundancy: int,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
    serial: bool = True,
    granularity: str = "transfer",
    schedule: Optional[str] = None,
) -> SimReport:
    """Simulate CodedTeraSort (the coded rows of Tables II-III).

    Args:
        num_nodes: ``K`` workers.
        redundancy: ``r`` — each file mapped on ``r`` nodes.
        n_records / cost / serial / granularity / schedule: as
            :func:`simulate_terasort` (rounds mode packs node-disjoint
            multicast groups via :func:`repro.core.groups.round_schedule`).

    Returns:
        The simulated :class:`SimReport`; ``meta`` includes the group count
        and per-packet payload for cross-checks against theory.
    """
    _check_granularity(granularity)
    schedule = _resolve_schedule(schedule, serial, granularity)
    cost = cost or EC2CostModel.paper_calibrated()
    work = CodedWorkload(
        num_nodes=num_nodes, redundancy=redundancy, n_records=n_records
    )
    plan = build_coding_plan(num_nodes, redundancy)
    groups_of_node: Dict[int, List[Sequence[int]]] = {
        k: [plan.groups[g] for g in plan.groups_of_node[k]]
        for k in range(num_nodes)
    }
    rounds = round_schedule(plan) if schedule == "rounds" else None
    env = Environment()
    net = NetworkModel(env, num_nodes, cost, serial=schedule == "serial")
    barrier = Barrier(env, num_nodes)
    table = _StageTable(num_nodes)
    for rank in range(num_nodes):
        env.process(
            coded_terasort_node(
                env,
                rank,
                work,
                cost,
                net,
                barrier,
                table,
                granularity,
                groups_of_node,
                rounds=rounds,
                all_groups=plan.groups,
            )
        )
    env.run()
    stage_times = StageTimes.merge_max(STAGE_ORDER_CODED, table.per_node)
    return SimReport(
        algorithm="coded_terasort",
        stage_times=stage_times,
        num_nodes=num_nodes,
        redundancy=redundancy,
        n_records=n_records,
        transfers=net.transfers,
        shuffle_payload_bytes=net.multicast_payload,
        meta={
            "serial": schedule == "serial",
            "schedule": schedule,
            "granularity": granularity,
            "num_groups": work.num_groups,
            "packet_bytes": work.packet_bytes,
            "total_multicasts": work.total_multicasts,
            "fabric_busy_time": net.busy_time,
            "sim_end_time": env.now,
        },
    )
