"""Balanced-workload quantities for the simulator.

For TeraGen's uniform keys the partitioner is balanced in expectation, so
every per-node / per-transfer size follows in closed form from
``(n_records, K, r)``.  These are *exact* expectations — the simulator uses
them as transfer sizes and compute volumes, and the functional runtime's
measured traffic converges to the same numbers (tested).

All byte quantities use the 100-byte record size; fractional bytes are kept
(the simulator is continuous-time, no need to round).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvpairs.records import RECORD_BYTES
from repro.utils.subsets import binomial


@dataclass(frozen=True)
class UncodedWorkload:
    """Per-node / per-transfer quantities for TeraSort at ``K`` nodes."""

    num_nodes: int
    n_records: int

    @property
    def total_bytes(self) -> float:
        return self.n_records * RECORD_BYTES

    @property
    def pairs_per_node(self) -> float:
        return self.n_records / self.num_nodes

    @property
    def unicast_bytes(self) -> float:
        """One intermediate value ``I^k_{j}``: ``D / K^2``."""
        return self.total_bytes / self.num_nodes**2

    @property
    def num_unicasts(self) -> int:
        return self.num_nodes * (self.num_nodes - 1)

    @property
    def pack_bytes_per_node(self) -> float:
        """Outgoing serialized bytes: ``(K-1)/K`` of the node's data."""
        return (
            self.total_bytes
            * (self.num_nodes - 1)
            / self.num_nodes**2
        )

    @property
    def unpack_bytes_per_node(self) -> float:
        """Received bytes: same as outgoing under balance."""
        return self.pack_bytes_per_node

    @property
    def reduce_pairs_per_node(self) -> float:
        return self.pairs_per_node


@dataclass(frozen=True)
class CodedWorkload:
    """Per-node / per-transfer quantities for CodedTeraSort at ``(K, r)``."""

    num_nodes: int
    redundancy: int
    n_records: int

    def __post_init__(self) -> None:
        if not 1 <= self.redundancy < self.num_nodes:
            raise ValueError(
                f"redundancy must be in [1, K-1], got {self.redundancy}"
            )

    # -- structure -------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        return self.n_records * RECORD_BYTES

    @property
    def num_files(self) -> int:
        return binomial(self.num_nodes, self.redundancy)

    @property
    def files_per_node(self) -> int:
        return binomial(self.num_nodes - 1, self.redundancy - 1)

    @property
    def num_groups(self) -> int:
        return binomial(self.num_nodes, self.redundancy + 1)

    @property
    def groups_per_node(self) -> int:
        """= packets encoded per node = files not containing the node."""
        return binomial(self.num_nodes - 1, self.redundancy)

    # -- sizes ---------------------------------------------------------------------

    @property
    def file_bytes(self) -> float:
        return self.total_bytes / self.num_files

    @property
    def intermediate_bytes(self) -> float:
        """One ``I^t_S``: a file's share of one partition, ``D/(N K)``."""
        return self.file_bytes / self.num_nodes

    @property
    def packet_bytes(self) -> float:
        """Coded packet payload: one ``1/r`` segment of an intermediate."""
        return self.intermediate_bytes / self.redundancy

    # -- per-stage volumes -----------------------------------------------------------

    @property
    def map_pairs_per_node(self) -> float:
        """Each node hashes ``r/K`` of all records."""
        return self.n_records * self.redundancy / self.num_nodes

    @property
    def encode_serialize_bytes_per_node(self) -> float:
        """Retained-for-others intermediates: ``C(K-1,r-1) (K-r)`` values."""
        return (
            self.files_per_node
            * (self.num_nodes - self.redundancy)
            * self.intermediate_bytes
        )

    @property
    def encode_xor_bytes_per_node(self) -> float:
        """Segment bytes XORed: ``C(K-1,r)`` packets x r segments each."""
        return self.groups_per_node * self.intermediate_bytes

    @property
    def total_multicasts(self) -> int:
        return self.num_groups * (self.redundancy + 1)

    @property
    def multicasts_per_node(self) -> int:
        return self.groups_per_node

    @property
    def shuffle_payload_total(self) -> float:
        """Total multicast payload = ``D (K-r)/(K r)`` = Eq. (2) load x D."""
        return self.total_multicasts * self.packet_bytes

    @property
    def decode_recovered_bytes_per_node(self) -> float:
        """Recovered intermediates: one per group containing the node."""
        return self.groups_per_node * self.intermediate_bytes

    @property
    def decode_packets_per_node(self) -> int:
        """Received packets: ``r`` per group containing the node."""
        return self.groups_per_node * self.redundancy

    @property
    def reduce_pairs_per_node(self) -> float:
        return self.n_records / self.num_nodes
