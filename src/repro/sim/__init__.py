"""Discrete-event cluster simulator calibrated to the paper's EC2 testbed.

The paper's evaluation ran on EC2 ``m3.large`` instances throttled to
100 Mbps.  This package reproduces those experiments at full scale (12 GB,
K = 16/20) without the cluster: a generator-based discrete-event engine
(:mod:`repro.sim.des`) executes the *same serial communication schedules*
(Fig. 9) transfer by transfer over a network model
(:mod:`repro.sim.network`), with per-stage compute costs from a cost model
calibrated against Tables I-III (:mod:`repro.sim.costmodel`).

Entry points: :func:`repro.sim.runner.simulate_terasort` and
:func:`repro.sim.runner.simulate_coded_terasort`.
"""

from repro.sim.costmodel import EC2CostModel
from repro.sim.des import Environment, Process, Resource, SimError
from repro.sim.network import NetworkModel
from repro.sim.runner import (
    SimReport,
    simulate_coded_terasort,
    simulate_terasort,
)

__all__ = [
    "EC2CostModel",
    "Environment",
    "Process",
    "Resource",
    "SimError",
    "NetworkModel",
    "SimReport",
    "simulate_terasort",
    "simulate_coded_terasort",
]
