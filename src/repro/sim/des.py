"""A minimal generator-based discrete-event simulation engine.

The style follows SimPy's process-interaction model (built from scratch —
no external dependency): simulation processes are Python generators that
``yield`` awaitables; the environment advances virtual time through a heap
of scheduled events.

Supported awaitables:

* :class:`Timeout` — resume after a virtual delay;
* :class:`Event` — resume when someone calls :meth:`Event.succeed`;
* :class:`Process` — resume when another process finishes (join);
* the request events of :class:`Resource` (FIFO counting semaphore) and
  :class:`Barrier` (N-party synchronization).

Determinism: simultaneous events fire in schedule order (a monotonically
increasing sequence number breaks time ties), so simulations are exactly
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimError(RuntimeError):
    """Raised on engine misuse (double-triggering, yielding junk, ...)."""


class Event:
    """A one-shot event; processes may wait on it before or after firing."""

    __slots__ = ("env", "_callbacks", "triggered", "value")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, resuming all waiters at the current sim time."""
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.env._schedule(0.0, cb, self)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.env._schedule(0.0, cb, self)
        else:
            self._callbacks.append(cb)


class Timeout(Event):
    """An event that fires ``delay`` sim-seconds after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float) -> None:
        if delay < 0:
            raise SimError(f"negative timeout {delay}")
        super().__init__(env)
        env._schedule(delay, self._fire, None)

    def _fire(self, _evt: Optional[Event]) -> None:
        if not self.triggered:
            self.succeed()


SimGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process; itself an event that fires on return."""

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", gen: SimGenerator) -> None:
        super().__init__(env)
        self._gen = gen
        env._schedule(0.0, self._resume, None)

    def _resume(self, evt: Optional[Event]) -> None:
        value = evt.value if evt is not None else None
        try:
            target = self._gen.send(value) if evt is not None else next(self._gen)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimError(
                f"process yielded {target!r}; expected an Event/Timeout/Process"
            )
        target.add_callback(self._resume)


class Environment:
    """The event loop: virtual clock plus a deterministic event heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[Optional[Event]], None], Optional[Event]]] = []
        self._seq = 0

    # -- scheduling ------------------------------------------------------------

    def _schedule(
        self,
        delay: float,
        cb: Callable[[Optional[Event]], None],
        evt: Optional[Event],
    ) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, cb, evt))
        self._seq += 1

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: SimGenerator) -> Process:
        """Start a new process from a generator."""
        return Process(self, gen)

    # -- execution ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains (or the clock passes ``until``)."""
        while self._heap:
            t, _seq, cb, evt = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if t < self.now:
                raise SimError("time went backwards (engine bug)")
            self.now = t
            cb(evt)

    def run_process(self, gen: SimGenerator) -> Any:
        """Convenience: start ``gen``, run to completion, return its value."""
        proc = self.process(gen)
        self.run()
        if not proc.triggered:
            raise SimError("process did not finish (deadlock?)")
        return proc.value


class Resource:
    """FIFO counting semaphore (e.g. the serial shuffle token, NICs)."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    def request(self) -> Event:
        """Returns an event that fires when the resource is granted."""
        evt = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError("release without a matching request")
        if self._waiters:
            # Hand the slot directly to the next waiter (FIFO).
            self._waiters.pop(0).succeed()
        else:
            self._in_use -= 1


class MultiLock:
    """Atomic all-or-nothing acquisition of a set of integer-keyed locks.

    Incremental lock-by-lock acquisition (even in a global order) is
    deadlock-free but convoys: a waiting process holds the locks it already
    has, serializing chains of overlapping requests.  ``MultiLock`` instead
    grants a request only when *all* of its keys are free, seizing them
    together, so disjoint requests always proceed concurrently.

    Grant policy is FIFO-with-skip: on every release the wait queue is
    scanned in arrival order and any request whose key set is now fully free
    is granted (keys are marked busy as the scan proceeds, so earlier
    waiters shadow later conflicting ones).  A new request is granted
    immediately only when the queue is empty — arrivals never overtake
    waiters, which rules out starvation.
    """

    def __init__(self, env: Environment, num_keys: int) -> None:
        if num_keys < 1:
            raise SimError(f"num_keys must be >= 1, got {num_keys}")
        self.env = env
        self.num_keys = num_keys
        self._busy = [False] * num_keys
        self._queue: List[Tuple[Tuple[int, ...], Event]] = []

    def _validate(self, keys: Tuple[int, ...]) -> None:
        for k in keys:
            if not 0 <= k < self.num_keys:
                raise SimError(f"key {k} out of range({self.num_keys})")

    def acquire(self, keys) -> Event:
        """Returns an event firing once every key in ``keys`` is held."""
        keyset = tuple(sorted(set(keys)))
        if not keyset:
            raise SimError("acquire() needs at least one key")
        self._validate(keyset)
        evt = Event(self.env)
        if all(not self._busy[k] for k in keyset) and not self._queue:
            for k in keyset:
                self._busy[k] = True
            evt.succeed()
        else:
            self._queue.append((keyset, evt))
        return evt

    def release(self, keys) -> None:
        """Release ``keys`` and grant any now-satisfiable queued requests."""
        keyset = tuple(sorted(set(keys)))
        self._validate(keyset)
        for k in keyset:
            if not self._busy[k]:
                raise SimError(f"release of key {k} without a matching acquire")
            self._busy[k] = False
        if not self._queue:
            return
        still_waiting: List[Tuple[Tuple[int, ...], Event]] = []
        for waiting_keys, evt in self._queue:
            if all(not self._busy[k] for k in waiting_keys):
                for k in waiting_keys:
                    self._busy[k] = True
                evt.succeed()
            else:
                still_waiting.append((waiting_keys, evt))
        self._queue = still_waiting


class Barrier:
    """N-party reusable barrier for stage synchronization."""

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise SimError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._arrived = 0
        self._gate = Event(env)

    def wait(self) -> Event:
        """Returns an event firing when all parties have arrived."""
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            self._arrived = 0
            self._gate = Event(self.env)
            gate.succeed()
        return gate
