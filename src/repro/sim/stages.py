"""Simulation stage programs for TeraSort and CodedTeraSort.

Each node is a DES process stepping through its algorithm's stages with a
barrier between stages (the paper executes stages synchronously, §VI).
Compute stages are cost-model timeouts; the shuffle executes the exact
serial schedules of Fig. 9 transfer by transfer on the network model.

Event granularity:

* ``"transfer"`` (default) — every unicast/multicast is its own
  acquire/hold/release event sequence, up to ``C(K, r+1) (r+1)`` events
  (232,560 at K=20, r=5 — the real Table III scale);
* ``"turn"`` — one fabric hold per sender turn with the summed duration;
  byte-identical totals, used by the large parameter sweeps.

Per-node stage durations land in a shared table merged with max semantics,
matching how the paper's tables report the breakdowns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.costmodel import EC2CostModel
from repro.sim.des import Barrier, Environment, SimGenerator
from repro.sim.network import NetworkModel
from repro.sim.workload import CodedWorkload, UncodedWorkload

Granularity = str  # "transfer" | "turn"

#: Conflict-free transfer rounds (see repro.core.groups round schedulers).
Rounds = List[List[Tuple[int, int]]]

STAGE_ORDER_UNCODED = ["map", "pack", "shuffle", "unpack", "reduce"]
STAGE_ORDER_CODED = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]


def _check_granularity(granularity: str) -> None:
    if granularity not in ("transfer", "turn"):
        raise ValueError(f"unknown event granularity {granularity!r}")


class _StageTable:
    """Per-node stage duration collection (written by node processes)."""

    def __init__(self, num_nodes: int) -> None:
        self.per_node: List[Dict[str, float]] = [dict() for _ in range(num_nodes)]

    def record(self, rank: int, stage: str, seconds: float) -> None:
        self.per_node[rank][stage] = self.per_node[rank].get(stage, 0.0) + seconds


def terasort_node(
    env: Environment,
    rank: int,
    work: UncodedWorkload,
    cost: EC2CostModel,
    net: NetworkModel,
    barrier: Barrier,
    table: _StageTable,
    granularity: Granularity,
    rounds: Optional[Rounds] = None,
) -> SimGenerator:
    """One TeraSort node: map, pack, unicast shuffle, unpack, reduce.

    With ``rounds`` given, the shuffle follows the conflict-free round
    schedule (scheduled-parallel mode) instead of the Fig. 9(a) turns.
    """
    k = work.num_nodes

    # Map
    start = env.now
    yield env.timeout(cost.map_time(work.pairs_per_node, 1))
    table.record(rank, "map", env.now - start)
    yield barrier.wait()

    # Pack
    start = env.now
    yield env.timeout(cost.pack_time(work.pack_bytes_per_node))
    table.record(rank, "pack", env.now - start)
    yield barrier.wait()

    # Shuffle — Fig. 9(a): sender turns in rank order.  In the paper's
    # serial mode a per-turn barrier hands the wire from sender to sender;
    # in the parallel ablation (asynchronous execution, §VI) all senders
    # transmit concurrently, contending only for NICs; in rounds mode each
    # conflict-free round's transfers run concurrently with a barrier
    # between rounds (the 1-factorization exchange).
    start = env.now
    if rounds is not None:
        for rnd in rounds:
            for src, dst in rnd:
                if src == rank:
                    yield from net.unicast(src, dst, work.unicast_bytes)
            yield barrier.wait()
    else:
        for sender in range(k):
            if sender == rank:
                if granularity == "turn":
                    duration = (k - 1) * cost.unicast_time(work.unicast_bytes)
                    yield from net.batched_hold(
                        [rank],
                        duration,
                        payload=(k - 1) * work.unicast_bytes,
                        kind="unicast",
                    )
                else:
                    for dst in range(k):
                        if dst != rank:
                            yield from net.unicast(rank, dst, work.unicast_bytes)
            if net.serial:
                yield barrier.wait()  # next sender starts after this turn
    table.record(rank, "shuffle", env.now - start)
    yield barrier.wait()

    # Unpack
    start = env.now
    yield env.timeout(cost.unpack_time(work.unpack_bytes_per_node))
    table.record(rank, "unpack", env.now - start)
    yield barrier.wait()

    # Reduce
    start = env.now
    yield env.timeout(cost.reduce_time(work.reduce_pairs_per_node, 1))
    table.record(rank, "reduce", env.now - start)
    yield barrier.wait()


def coded_terasort_node(
    env: Environment,
    rank: int,
    work: CodedWorkload,
    cost: EC2CostModel,
    net: NetworkModel,
    barrier: Barrier,
    table: _StageTable,
    granularity: Granularity,
    groups_of_node: Dict[int, List[Sequence[int]]],
    rounds: Optional[Rounds] = None,
    all_groups: Optional[List[Sequence[int]]] = None,
) -> SimGenerator:
    """One CodedTeraSort node: the six-stage pipeline of §V-A.

    With ``rounds`` given (items are ``(group_idx, sender)``; requires
    ``all_groups`` for the index -> members mapping), the shuffle follows
    the conflict-free round schedule instead of the Fig. 9(b) turns.
    """
    k = work.num_nodes
    r = work.redundancy

    # CodeGen — every node builds the plan (cost ∝ number of groups).
    start = env.now
    yield env.timeout(cost.codegen_time(work.num_groups))
    table.record(rank, "codegen", env.now - start)
    yield barrier.wait()

    # Map
    start = env.now
    yield env.timeout(cost.map_time(work.map_pairs_per_node, r))
    table.record(rank, "map", env.now - start)
    yield barrier.wait()

    # Encode
    start = env.now
    yield env.timeout(
        cost.encode_time(
            work.encode_serialize_bytes_per_node,
            work.encode_xor_bytes_per_node,
        )
    )
    table.record(rank, "encode", env.now - start)
    yield barrier.wait()

    # Multicast shuffle — Fig. 9(b): sender turns in rank order; within a
    # turn the sender multicasts one packet per group it belongs to.  In
    # rounds mode, node-disjoint multicasts of a round run concurrently
    # with a barrier between rounds.
    start = env.now
    my_groups = groups_of_node[rank]
    if rounds is not None:
        assert all_groups is not None
        for rnd in rounds:
            for gidx, sender in rnd:
                if sender == rank:
                    dsts = [m for m in all_groups[gidx] if m != rank]
                    yield from net.multicast(rank, dsts, work.packet_bytes)
            yield barrier.wait()
    else:
        for sender in range(k):
            if sender == rank:
                if granularity == "turn":
                    duration = len(my_groups) * cost.multicast_time(
                        work.packet_bytes, r
                    )
                    yield from net.batched_hold(
                        [rank],
                        duration,
                        payload=len(my_groups) * work.packet_bytes,
                        kind="multicast",
                    )
                else:
                    for group in my_groups:
                        dsts = [m for m in group if m != rank]
                        yield from net.multicast(rank, dsts, work.packet_bytes)
            if net.serial:
                yield barrier.wait()
    table.record(rank, "shuffle", env.now - start)
    yield barrier.wait()

    # Decode
    start = env.now
    yield env.timeout(
        cost.decode_time(
            work.decode_recovered_bytes_per_node,
            work.decode_packets_per_node,
        )
    )
    table.record(rank, "decode", env.now - start)
    yield barrier.wait()

    # Reduce
    start = env.now
    yield env.timeout(cost.reduce_time(work.reduce_pairs_per_node, r))
    table.record(rank, "reduce", env.now - start)
    yield barrier.wait()
