"""Token-bucket pacing for the real (multiprocessing) backend.

The paper throttles every EC2 instance to 100 Mbps with ``tc`` so that the
shuffle bottleneck is visible at modest data sizes.  We reproduce that in
userspace: a sender-side token bucket paces socket writes, so a local run
with ``rate_bytes_per_s=12.5e6`` exhibits the same shuffle-dominated profile
as the paper's cluster.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst`` tokens.

    One token = one byte.  :meth:`consume` blocks (sleeps) until the
    requested number of tokens is available; requests larger than the burst
    are drawn down in burst-sized installments, which yields smooth pacing
    for arbitrarily large messages.

    Thread-safe: the bucket is shared by every thread that sends on a
    worker (program thread, async sender, tree relays), and the internal
    lock is held across the pacing sleep — concurrent senders serialize,
    which is exactly the single-egress-NIC semantics the paper's ``tc``
    throttle has.
    """

    def __init__(
        self,
        rate_bytes_per_s: float,
        burst_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
        self.rate = float(rate_bytes_per_s)
        self.burst = int(burst_bytes) if burst_bytes else max(int(self.rate / 10), 1)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._clock = clock
        self._sleep = sleep
        self._tokens = float(self.burst)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def consume(self, nbytes: int) -> None:
        """Block until ``nbytes`` tokens have been consumed."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            remaining = nbytes
            while remaining > 0:
                self._refill()
                take = min(remaining, self.burst)
                if self._tokens >= take:
                    self._tokens -= take
                    remaining -= take
                    continue
                deficit = take - self._tokens
                self._sleep(deficit / self.rate)
                # We slept for exactly the deficit, so the bucket has earned
                # it; the clock may not show the full amount (sub-resolution
                # sleeps round to nothing, which would starve the refill
                # loop), so top the balance up to ``take`` if quantization
                # left it short.
                self._refill()
                if self._tokens < take:
                    self._tokens = float(take)

    def try_consume(self, nbytes: int) -> bool:
        """All-or-nothing variant (may briefly wait on a pacing sender)."""
        with self._lock:
            self._refill()
            if self._tokens >= nbytes:
                self._tokens -= nbytes
                return True
            return False
