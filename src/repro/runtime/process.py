"""Multiprocessing cluster backend: real parallel execution.

Architecture (the paper's Fig. 8, coordinator + K workers):

* the parent process is the coordinator: it creates a full mesh of
  ``socketpair`` channels, forks K worker processes, and collects results,
  stage timings, and traffic logs over per-worker pipes;
* each worker runs the same :class:`~repro.runtime.program.NodeProgram` the
  threaded backend runs, over a :class:`Comm` whose point-to-point primitive
  is framed socket I/O;
* an optional sender-side token bucket throttles every worker's NIC,
  reproducing the paper's 100 Mbps ``tc`` configuration;
* barriers are dissemination barriers over the same mesh (O(K log K) empty
  frames), so no central coordinator round-trip sits on the timed path.

Workers inherit the program factory through ``fork``, so factories may close
over arbitrary in-memory state (e.g. pre-generated input files) without
pickling.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import traceback
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.runtime.api import Comm, CommError, MulticastMode, barrier_tag
from repro.runtime.program import ClusterResult, NodeProgram, ProgramFactory
from repro.runtime.ratelimit import TokenBucket
from repro.runtime.traffic import TrafficLog, TrafficRecord
from repro.runtime.transport import TransportError, recv_frame, send_frame
from repro.utils.timer import StageTimes


class _SocketComm(Comm):
    """Comm endpoint over a mesh of per-peer stream sockets."""

    def __init__(
        self,
        rank: int,
        size: int,
        conns: Dict[int, socket.socket],
        multicast_mode: MulticastMode,
        pacer: Optional[TokenBucket],
    ) -> None:
        super().__init__(
            rank, size, traffic=TrafficLog(), multicast_mode=multicast_mode
        )
        self._conns = conns
        self._pacer = pacer
        # Out-of-order frames buffered per (peer, tag).
        self._pending: Dict[int, Dict[int, Deque[bytes]]] = {
            peer: {} for peer in conns
        }
        self._barrier_epoch = 0

    def _send_raw(self, dst: int, tag: int, payload: bytes) -> None:
        try:
            send_frame(self._conns[dst], tag, payload, pacer=self._pacer)
        except (OSError, TransportError) as exc:
            raise CommError(f"send to {dst} failed: {exc}") from exc

    def _recv_raw(self, src: int, tag: int) -> bytes:
        buf = self._pending[src].get(tag)
        if buf:
            return buf.popleft()
        while True:
            try:
                got_tag, payload = recv_frame(self._conns[src])
            except (OSError, TransportError) as exc:
                raise CommError(f"recv from {src} failed: {exc}") from exc
            if got_tag == tag:
                return payload
            self._pending[src].setdefault(got_tag, deque()).append(payload)

    def _barrier_raw(self) -> None:
        """Dissemination barrier: log2(K) rounds of shifted token passing."""
        k = self.size
        if k == 1:
            return
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        round_idx = 0
        dist = 1
        while dist < k:
            dst = (self.rank + dist) % k
            src = (self.rank - dist) % k
            tag = barrier_tag(epoch * 64 + round_idx)
            self._send_raw(dst, tag, b"")
            self._recv_raw(src, tag)
            dist <<= 1
            round_idx += 1


def _worker_main(
    rank: int,
    size: int,
    conns: Dict[int, socket.socket],
    factory: ProgramFactory,
    multicast_mode: MulticastMode,
    rate_bytes_per_s: Optional[float],
    result_conn,
    socket_timeout: float,
) -> None:
    """Worker entry point (runs in the forked child)."""
    try:
        for s in conns.values():
            s.settimeout(socket_timeout)
        pacer = (
            TokenBucket(rate_bytes_per_s) if rate_bytes_per_s is not None else None
        )
        comm = _SocketComm(rank, size, conns, multicast_mode, pacer)
        program = factory(comm)
        result = program.run()
        assert comm.traffic is not None
        result_conn.send(
            (
                "ok",
                rank,
                result,
                program.stopwatch.times(),
                comm.traffic.records,
                list(program.STAGES),
            )
        )
    except BaseException:  # noqa: BLE001 - reported to the parent
        result_conn.send(("error", rank, traceback.format_exc(), None, None, None))
    finally:
        result_conn.close()
        for s in conns.values():
            try:
                s.close()
            except OSError:
                pass


class ProcessCluster:
    """K worker processes over an AF_UNIX socket mesh.

    Args:
        size: number of workers (the paper's ``K``).
        multicast_mode: linear or binomial-tree application multicast.
        rate_bytes_per_s: per-worker egress throttle; ``12.5e6`` reproduces
            the paper's 100 Mbps setting. ``None`` disables pacing.
        timeout: overall run timeout in seconds (workers are killed past it).
    """

    def __init__(
        self,
        size: int,
        multicast_mode: MulticastMode = MulticastMode.TREE,
        rate_bytes_per_s: Optional[float] = None,
        timeout: float = 300.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if os.name != "posix":  # pragma: no cover - linux-only environment
            raise RuntimeError("ProcessCluster requires a POSIX fork platform")
        self.size = size
        self.multicast_mode = multicast_mode
        self.rate_bytes_per_s = rate_bytes_per_s
        self.timeout = timeout

    def run(self, factory: ProgramFactory) -> ClusterResult:
        """Fork workers, run the program, gather results and traffic.

        Raises:
            RuntimeError: if any worker fails or the run times out; the
                worker's traceback text is included.
        """
        ctx = multiprocessing.get_context("fork")
        k = self.size

        # Full mesh: one socketpair per unordered node pair.
        pairs: Dict[Tuple[int, int], Tuple[socket.socket, socket.socket]] = {}
        for i in range(k):
            for j in range(i + 1, k):
                pairs[(i, j)] = socket.socketpair()

        parent_conns = []
        processes = []
        try:
            for rank in range(k):
                conns: Dict[int, socket.socket] = {}
                for (i, j), (si, sj) in pairs.items():
                    if rank == i:
                        conns[j] = si
                    elif rank == j:
                        conns[i] = sj
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        k,
                        conns,
                        factory,
                        self.multicast_mode,
                        self.rate_bytes_per_s,
                        send_conn,
                        self.timeout,
                    ),
                    name=f"worker-{rank}",
                )
                proc.start()
                send_conn.close()
                parent_conns.append(recv_conn)
                processes.append(proc)
            # Parent no longer needs the mesh fds.
            for si, sj in pairs.values():
                si.close()
                sj.close()

            results: List[Any] = [None] * k
            times: List[Dict[str, float]] = [dict() for _ in range(k)]
            traffic = TrafficLog()
            stages: List[str] = []
            failures: List[str] = []
            for conn in parent_conns:
                if not conn.poll(self.timeout):
                    failures.append("worker result timeout")
                    continue
                status, rank, payload, sw_times, records, prog_stages = conn.recv()
                if status != "ok":
                    failures.append(f"worker {rank}:\n{payload}")
                    continue
                results[rank] = payload
                times[rank] = sw_times
                traffic.extend(records)
                if prog_stages and not stages:
                    stages = prog_stages
            for proc in processes:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
            if failures:
                raise RuntimeError(
                    "ProcessCluster run failed:\n" + "\n".join(failures)
                )
            if not stages:
                stages = sorted({s for t in times for s in t})
            return ClusterResult(
                results=results,
                stage_times=StageTimes.merge_max(stages, times),
                per_node_times=times,
                traffic=traffic,
            )
        finally:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for conn in parent_conns:
                conn.close()
