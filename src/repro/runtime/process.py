"""Multiprocessing cluster backend: real parallel execution.

Architecture (the paper's Fig. 8, coordinator + K workers):

* the parent process is the coordinator: it creates a full mesh of
  ``socketpair`` channels, forks K worker processes, and collects results,
  stage timings, and traffic logs over per-worker pipes;
* each worker runs the same :class:`~repro.runtime.program.NodeProgram` the
  threaded backend runs, over a :class:`Comm` whose point-to-point primitive
  is framed socket I/O;
* an optional sender-side token bucket throttles every worker's NIC,
  reproducing the paper's 100 Mbps ``tc`` configuration;
* barriers are dissemination barriers over the same mesh (O(K log K) empty
  frames), so no central coordinator round-trip sits on the timed path.

The data plane is zero-copy on both sides of every socket: sends hand the
framing header plus the caller's buffer parts to vectored ``sendmsg``
(no concatenation), and each inbound frame lands in one freshly-allocated
``bytearray`` arena via ``recv_into`` — receives with ``copy=False``
return memoryview slices of that arena all the way up to the program.

Each worker runs one *reader thread per peer socket* that demultiplexes
inbound frames into a tagged mailbox.  That is what makes the non-blocking
API deadlock-free: sockets are always drained regardless of which receives
the program has posted or waited, so a peer's send can never stall forever
on a full kernel buffer.  Blocking receives, lazy ``irecv`` requests, and
barrier frames all pop from the same mailbox.  ``isend`` / root-side
``ibcast`` closures run on a single per-worker sender thread (preserving
per-channel FIFO order); a per-destination lock keeps frames from
interleaving when the program thread (barriers, blocking broadcasts) sends
concurrently with the sender thread.

Workers inherit the program factory through ``fork``, so factories may close
over arbitrary in-memory state (e.g. pre-generated input files) without
pickling.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import struct
import threading
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.api import (
    BACKEND_TIMEOUT,
    BufferParts,
    Comm,
    CommError,
    DEFAULT_CHUNK_BYTES,
    MulticastMode,
    Request,
    _FutureRequest,
    barrier_tag,
)
from repro.runtime.mailbox import Mailbox, MailboxClosed
from repro.runtime.program import ClusterResult, NodeProgram, ProgramFactory
from repro.runtime.ratelimit import TokenBucket
from repro.runtime.traffic import TrafficLog
from repro.runtime.transport import TransportError, recv_frame, send_frame
from repro.utils.timer import StageTimes


class _SocketComm(Comm):
    """Comm endpoint over a mesh of per-peer stream sockets."""

    def __init__(
        self,
        rank: int,
        size: int,
        conns: Dict[int, socket.socket],
        multicast_mode: MulticastMode,
        pacer: Optional[TokenBucket],
        recv_timeout: Optional[float],
        chunk_bytes: int,
        record_relays: bool,
    ) -> None:
        super().__init__(
            rank,
            size,
            traffic=TrafficLog(),
            multicast_mode=multicast_mode,
            chunk_bytes=chunk_bytes,
            record_relays=record_relays,
        )
        self._conns = conns
        self._pacer = pacer
        self._recv_timeout = recv_timeout
        self._mailbox = Mailbox()
        self._send_locks: Dict[int, threading.Lock] = {
            peer: threading.Lock() for peer in conns
        }
        self._readers: List[threading.Thread] = []
        self._send_queue: Optional["queue.Queue"] = None
        self._sender_thread: Optional[threading.Thread] = None
        self._sender_lock = threading.Lock()
        self._barrier_epoch = 0

    # -- inbound demultiplexing -------------------------------------------------

    def _start_readers(self) -> None:
        """Spawn one reader thread per peer socket (call in the worker)."""
        for peer, sock in self._conns.items():
            t = threading.Thread(
                target=self._reader_loop,
                args=(peer, sock),
                daemon=True,
                name=f"reader-{self.rank}<-{peer}",
            )
            t.start()
            self._readers.append(t)

    def _reader_loop(self, peer: int, sock: socket.socket) -> None:
        while True:
            try:
                tag, payload = recv_frame(sock)
            except (OSError, TransportError) as exc:
                self._mailbox.close_source(peer, str(exc))
                return
            try:
                self._mailbox.put(peer, tag, payload)
            except MailboxClosed:
                return

    # -- raw primitives ---------------------------------------------------------

    def _send_raw(self, dst: int, tag: int, payload: BufferParts) -> None:
        """Vectored frame write: header + parts go out in one ``sendmsg``."""
        try:
            with self._send_locks[dst]:
                send_frame(self._conns[dst], tag, payload, pacer=self._pacer)
        except (OSError, TransportError) as exc:
            raise CommError(f"send to {dst} failed: {exc}") from exc

    def _recv_raw(self, src: int, tag: int, timeout=BACKEND_TIMEOUT) -> bytearray:
        if timeout is BACKEND_TIMEOUT:
            timeout = self._recv_timeout
        try:
            return self._mailbox.get(src, tag, timeout)
        except (MailboxClosed, TimeoutError) as exc:
            raise CommError(f"recv from {src} failed: {exc}") from exc

    def _poll_raw(self, src: int, tag: int) -> Optional[bytes]:
        try:
            return self._mailbox.poll(src, tag)
        except MailboxClosed as exc:
            raise CommError(f"recv from {src} failed: {exc}") from exc

    def _barrier_raw(self) -> None:
        """Dissemination barrier: log2(K) rounds of shifted token passing."""
        k = self.size
        if k == 1:
            return
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        round_idx = 0
        dist = 1
        while dist < k:
            dst = (self.rank + dist) % k
            src = (self.rank - dist) % k
            tag = barrier_tag(epoch * 64 + round_idx)
            self._send_raw(dst, tag, b"")
            self._recv_raw(src, tag)
            dist <<= 1
            round_idx += 1

    # -- async dispatch ----------------------------------------------------------

    def _dispatch_send(self, fn: Callable[[], Optional[bytes]]) -> Request:
        """Run a send closure on the per-worker sender thread, in order."""
        with self._sender_lock:
            if self._send_queue is None:
                self._send_queue = queue.Queue()
                self._sender_thread = threading.Thread(
                    target=self._sender_loop,
                    daemon=True,
                    name=f"sender-{self.rank}",
                )
                self._sender_thread.start()
        # A send future's plain wait() is bounded like a receive, so a
        # wedged peer (full buffer, nothing draining) surfaces as an error.
        req = _FutureRequest(default_timeout=self._recv_timeout)
        self._send_queue.put((fn, req))
        return req

    def _sender_loop(self) -> None:
        assert self._send_queue is not None
        while True:
            item = self._send_queue.get()
            if item is None:
                return
            fn, req = item
            try:
                req._set(fn())
            except BaseException as exc:  # noqa: BLE001 - delivered via wait
                req._fail(exc)

    def _close_async(self) -> None:
        if self._send_queue is not None:
            self._send_queue.put(None)
            assert self._sender_thread is not None
            self._sender_thread.join(timeout=10.0)


def _worker_main(
    rank: int,
    size: int,
    conns: Dict[int, socket.socket],
    extra_close: List,
    factory: ProgramFactory,
    multicast_mode: MulticastMode,
    rate_bytes_per_s: Optional[float],
    result_conn,
    socket_timeout: float,
    chunk_bytes: int,
    record_relays: bool,
) -> None:
    """Worker entry point (runs in the forked child)."""
    # Drop inherited duplicates of other endpoints' fds.  Without this a
    # dead peer's channel never reaches EOF (our own inherited copy of its
    # socket end keeps it open), so failures would only surface via the
    # receive timeout instead of an immediate reader-thread EOF.
    for obj in extra_close:
        try:
            obj.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    # Bound sends at the kernel (SO_SNDTIMEO) so a wedged peer — full
    # buffer, nothing draining — raises in the blocked worker with a
    # traceback naming the stuck send.  SO_SNDTIMEO (unlike settimeout)
    # leaves the reader threads' blocking recv untouched: an idle receive
    # direction is normal; a send that cannot drain for this long is not.
    sndtimeo = struct.pack(
        "ll", int(socket_timeout), int((socket_timeout % 1) * 1e6)
    )
    for s in conns.values():
        s.setsockopt(socket.SOL_SOCKET, socket.SO_SNDTIMEO, sndtimeo)
    comm: Optional[_SocketComm] = None
    try:
        pacer = (
            TokenBucket(rate_bytes_per_s) if rate_bytes_per_s is not None else None
        )
        comm = _SocketComm(
            rank,
            size,
            conns,
            multicast_mode,
            pacer,
            socket_timeout,
            chunk_bytes,
            record_relays,
        )
        comm._start_readers()
        program = factory(comm)
        result = program.run()
        assert comm.traffic is not None
        result_conn.send(
            (
                "ok",
                rank,
                result,
                program.stopwatch.times(),
                comm.traffic.records,
                list(program.STAGES),
            )
        )
    except BaseException:  # noqa: BLE001 - reported to the parent
        result_conn.send(("error", rank, traceback.format_exc(), None, None, None))
    finally:
        if comm is not None:
            comm._close_async()
        result_conn.close()
        for s in conns.values():
            try:
                s.close()
            except OSError:
                pass


class ProcessCluster:
    """K worker processes over an AF_UNIX socket mesh.

    Args:
        size: number of workers (the paper's ``K``).
        multicast_mode: linear or binomial-tree application multicast.
        rate_bytes_per_s: per-worker egress throttle; ``12.5e6`` reproduces
            the paper's 100 Mbps setting. ``None`` disables pacing.
        timeout: overall run timeout in seconds (workers are killed past it);
            also bounds how long any single receive may wait.
        chunk_bytes: maximum raw-frame size for one user payload chunk.
        record_relays: additionally log every physical broadcast hop (kind
            ``"relay"``) to the traffic log.
    """

    def __init__(
        self,
        size: int,
        multicast_mode: MulticastMode = MulticastMode.TREE,
        rate_bytes_per_s: Optional[float] = None,
        timeout: float = 300.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        record_relays: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if os.name != "posix":  # pragma: no cover - linux-only environment
            raise RuntimeError("ProcessCluster requires a POSIX fork platform")
        self.size = size
        self.multicast_mode = multicast_mode
        self.rate_bytes_per_s = rate_bytes_per_s
        self.timeout = timeout
        self.chunk_bytes = chunk_bytes
        self.record_relays = record_relays

    def run(self, factory: ProgramFactory) -> ClusterResult:
        """Fork workers, run the program, gather results and traffic.

        Raises:
            RuntimeError: if any worker fails or the run times out; the
                worker's traceback text is included.
        """
        ctx = multiprocessing.get_context("fork")
        k = self.size

        # Full mesh: one socketpair per unordered node pair.
        pairs: Dict[Tuple[int, int], Tuple[socket.socket, socket.socket]] = {}
        for i in range(k):
            for j in range(i + 1, k):
                pairs[(i, j)] = socket.socketpair()

        parent_conns = []
        processes = []
        try:
            for rank in range(k):
                conns: Dict[int, socket.socket] = {}
                extra_close: List = []
                for (i, j), (si, sj) in pairs.items():
                    if rank == i:
                        conns[j] = si
                        extra_close.append(sj)
                    elif rank == j:
                        conns[i] = sj
                        extra_close.append(si)
                    else:
                        extra_close.extend((si, sj))
                # Result-pipe read ends (earlier workers' and this one's
                # own) are inherited too; the child drops those copies.
                extra_close.extend(parent_conns)
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                extra_close.append(recv_conn)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        k,
                        conns,
                        extra_close,
                        factory,
                        self.multicast_mode,
                        self.rate_bytes_per_s,
                        send_conn,
                        self.timeout,
                        self.chunk_bytes,
                        self.record_relays,
                    ),
                    name=f"worker-{rank}",
                )
                proc.start()
                send_conn.close()
                parent_conns.append(recv_conn)
                processes.append(proc)
            # Parent no longer needs the mesh fds.
            for si, sj in pairs.values():
                si.close()
                sj.close()

            results: List[Any] = [None] * k
            times: List[Dict[str, float]] = [dict() for _ in range(k)]
            traffic = TrafficLog()
            stages: List[str] = []
            failures: List[str] = []
            for conn in parent_conns:
                if not conn.poll(self.timeout):
                    failures.append("worker result timeout")
                    continue
                status, rank, payload, sw_times, records, prog_stages = conn.recv()
                if status != "ok":
                    failures.append(f"worker {rank}:\n{payload}")
                    continue
                results[rank] = payload
                times[rank] = sw_times
                traffic.extend(records)
                if prog_stages and not stages:
                    stages = prog_stages
            for proc in processes:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
            if failures:
                raise RuntimeError(
                    "ProcessCluster run failed:\n" + "\n".join(failures)
                )
            if not stages:
                stages = sorted({s for t in times for s in t})
            return ClusterResult(
                results=results,
                stage_times=StageTimes.merge_max(stages, times),
                per_node_times=times,
                traffic=traffic,
            )
        finally:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for conn in parent_conns:
                conn.close()
