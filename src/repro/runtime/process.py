"""Multiprocessing cluster backend: real parallel execution.

Architecture (the paper's Fig. 8, coordinator + K workers):

* the parent process is the coordinator: it creates a full mesh of
  ``socketpair`` channels, forks K worker processes, and collects results,
  stage timings, and traffic logs over per-worker pipes;
* each worker runs the same :class:`~repro.runtime.program.NodeProgram` the
  threaded backend runs, over a :class:`Comm` whose point-to-point primitive
  is framed socket I/O;
* an optional sender-side token bucket throttles every worker's NIC,
  reproducing the paper's 100 Mbps ``tc`` configuration;
* barriers are dissemination barriers over the same mesh (O(K log K) empty
  frames), so no central coordinator round-trip sits on the timed path.

The data plane is zero-copy on both sides of every socket: sends hand the
framing header plus the caller's buffer parts to vectored ``sendmsg``
(no concatenation), and each inbound frame lands in one freshly-allocated
``bytearray`` arena via ``recv_into`` — receives with ``copy=False``
return memoryview slices of that arena all the way up to the program.

Each worker runs one *reader thread per peer socket* that demultiplexes
inbound frames into a tagged mailbox.  That is what makes the non-blocking
API deadlock-free: sockets are always drained regardless of which receives
the program has posted or waited, so a peer's send can never stall forever
on a full kernel buffer.  Blocking receives, lazy ``irecv`` requests, and
barrier frames all pop from the same mailbox.  ``isend`` / root-side
``ibcast`` closures run on a single per-worker sender thread (preserving
per-channel FIFO order); a per-destination lock keeps frames from
interleaving when the program thread (barriers, blocking broadcasts) sends
concurrently with the sender thread.

Workers inherit the program factory through ``fork``, so factories may close
over arbitrary in-memory state (e.g. pre-generated input files) without
pickling.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import struct
import threading
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.api import (
    BACKEND_TIMEOUT,
    BufferParts,
    Comm,
    CommError,
    DEFAULT_CHUNK_BYTES,
    JOB_TAG_STRIDE,
    MulticastMode,
    Request,
    _BARRIER_NS,
    _BCAST_NS,
    _FutureRequest,
    _JOB_BARRIER_EPOCH_STRIDE,
    _JOB_TAG_WINDOWS,
    barrier_tag,
)
from repro.runtime.errors import (
    RuntimeTimeoutError,
    WorkerFailure,
    job_failure as _job_failure,
)
from repro.runtime.mailbox import Mailbox, MailboxClosed
from repro.runtime.monitor import JobMonitor
from repro.runtime.program import (
    ClusterResult,
    JobControl,
    NodeProgram,
    PreparedJob,
    ProgramFactory,
    assemble_cluster_result,
)
from repro.runtime.ratelimit import TokenBucket
from repro.runtime.traffic import TrafficLog
from repro.runtime.transport import TransportError, recv_frame, send_frame
from repro.utils.timer import StageTimes


class _SocketComm(Comm):
    """Comm endpoint over a mesh of per-peer stream sockets."""

    def __init__(
        self,
        rank: int,
        size: int,
        conns: Dict[int, socket.socket],
        multicast_mode: MulticastMode,
        pacer: Optional[TokenBucket],
        recv_timeout: Optional[float],
        chunk_bytes: int,
        record_relays: bool,
    ) -> None:
        super().__init__(
            rank,
            size,
            traffic=TrafficLog(),
            multicast_mode=multicast_mode,
            chunk_bytes=chunk_bytes,
            record_relays=record_relays,
        )
        self._conns = conns
        self._pacer = pacer
        self._recv_timeout = recv_timeout
        self._mailbox = Mailbox()
        self._send_locks: Dict[int, threading.Lock] = {
            peer: threading.Lock() for peer in conns
        }
        #: Membership epoch at which each peer link was established; 0
        #: for the initial mesh.  Elastic pools stamp later incarnations
        #: (see :meth:`add_peer`), and :class:`SubsetComm` compares these
        #: against a job's planning epoch so a job dispatched before a
        #: rank was recycled can never talk to the replacement worker.
        self.peer_epochs: Dict[int, int] = {peer: 0 for peer in conns}
        self._readers: List[threading.Thread] = []
        self._send_queue: Optional["queue.Queue"] = None
        self._sender_thread: Optional[threading.Thread] = None
        self._sender_lock = threading.Lock()
        self._barrier_epoch = 0

    # -- inbound demultiplexing -------------------------------------------------

    def _start_readers(self) -> None:
        """Spawn one reader thread per peer socket (call in the worker)."""
        for peer, sock in self._conns.items():
            t = threading.Thread(
                target=self._reader_loop,
                args=(peer, sock),
                daemon=True,
                name=f"reader-{self.rank}<-{peer}",
            )
            t.start()
            self._readers.append(t)

    def _reader_loop(self, peer: int, sock: socket.socket) -> None:
        while True:
            try:
                tag, payload = recv_frame(sock)
            except (OSError, TransportError) as exc:
                # Close the source only while this socket is still the
                # peer's current link: a replacement incarnation may have
                # been integrated (add_peer) before the old link's EOF
                # drained, and its fresh source must stay open.
                if self._conns.get(peer) is sock:
                    self._mailbox.close_source(peer, str(exc))
                return
            try:
                self._mailbox.put(peer, tag, payload)
            except MailboxClosed:
                return

    # -- elastic membership -----------------------------------------------------

    def add_peer(
        self, peer: int, sock: socket.socket, epoch: int = 0
    ) -> None:
        """Integrate a (re)joined worker's mesh link into this endpoint.

        Called by the resilient worker's mesh-growth acceptor when a
        replacement agent dials in mid-service: the new socket replaces
        any dead link at ``peer``'s rank, the rank's mailbox source is
        reopened (the old incarnation's EOF closed it), a fresh reader
        thread starts, and the link is stamped with the membership
        ``epoch`` it was born in.  Safe while disjoint subset jobs run:
        an in-flight :class:`SubsetComm` snapshots its members' sockets
        at construction and never includes a dead rank.
        """
        if self._recv_timeout is not None:
            sndtimeo = struct.pack(
                "ll",
                int(self._recv_timeout),
                int((self._recv_timeout % 1) * 1e6),
            )
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDTIMEO, sndtimeo)
        old = self._conns.get(peer)
        self._conns[peer] = sock
        self._send_locks.setdefault(peer, threading.Lock())
        self.peer_epochs[peer] = epoch
        if peer >= self.size:
            self.size = peer + 1
        self._mailbox.reopen_source(peer)
        t = threading.Thread(
            target=self._reader_loop,
            args=(peer, sock),
            daemon=True,
            name=f"reader-{self.rank}<-{peer}",
        )
        t.start()
        self._readers.append(t)
        if old is not None and old is not sock:
            try:
                old.close()
            except OSError:  # pragma: no cover - already dead
                pass

    def wait_for_peers(
        self, peers: Sequence[int], timeout: float = 5.0
    ) -> None:
        """Block until every listed rank has a mesh link (or raise).

        A subset job can be dispatched the instant a rejoined member
        reported ready to the coordinator, a hair before *this* worker's
        acceptor finished integrating that member's peer link — absorb
        the race instead of failing the job on it.
        """
        deadline = time.monotonic() + timeout
        missing = [
            g for g in peers if g != self.rank and g not in self._conns
        ]
        while missing:
            if time.monotonic() >= deadline:
                raise CommError(
                    f"subset members {missing} are not mesh peers of rank "
                    f"{self.rank} after {timeout:.1f}s (mesh size {self.size})"
                )
            time.sleep(0.01)
            missing = [
                g for g in missing if g not in self._conns
            ]

    # -- raw primitives ---------------------------------------------------------

    def _send_raw(self, dst: int, tag: int, payload: BufferParts) -> None:
        """Vectored frame write: header + parts go out in one ``sendmsg``."""
        try:
            with self._send_locks[dst]:
                send_frame(self._conns[dst], tag, payload, pacer=self._pacer)
        except socket.timeout as exc:
            # SO_SNDTIMEO expiry: the peer stopped draining (wedged or
            # dead) — typed so drivers can tell timeout from protocol bug.
            raise RuntimeTimeoutError(
                f"send to worker {dst} timed out in stage "
                f"{self._stage!r}: {exc}",
                peer=dst,
                stage=self._stage,
            ) from exc
        except (OSError, TransportError) as exc:
            raise WorkerFailure(
                dst, self._stage, f"send failed: {exc}"
            ) from exc

    def _recv_raw(self, src: int, tag: int, timeout=BACKEND_TIMEOUT) -> bytearray:
        if timeout is BACKEND_TIMEOUT:
            timeout = self._recv_timeout
        try:
            return self._mailbox.get(src, tag, timeout)
        except TimeoutError as exc:
            raise RuntimeTimeoutError(
                f"recv from worker {src} timed out after {timeout}s in "
                f"stage {self._stage!r}",
                peer=src,
                stage=self._stage,
                seconds=timeout,
            ) from exc
        except MailboxClosed as exc:
            raise WorkerFailure(
                src, self._stage, f"peer connection lost: {exc}"
            ) from exc

    def _poll_raw(self, src: int, tag: int) -> Optional[bytes]:
        try:
            return self._mailbox.poll(src, tag)
        except MailboxClosed as exc:
            raise WorkerFailure(
                src, self._stage, f"peer connection lost: {exc}"
            ) from exc

    def _begin_job_raw(self, job_seq: int) -> None:
        # Per-job barrier-epoch base: a stale barrier frame of an earlier
        # (e.g. aborted) job can never match a later job's rounds.
        self._barrier_epoch = (
            job_seq % _JOB_TAG_WINDOWS
        ) * _JOB_BARRIER_EPOCH_STRIDE

    def _barrier_raw(self) -> None:
        """Dissemination barrier: log2(K) rounds of shifted token passing."""
        k = self.size
        if k == 1:
            return
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        round_idx = 0
        dist = 1
        while dist < k:
            dst = (self.rank + dist) % k
            src = (self.rank - dist) % k
            tag = barrier_tag(epoch * 64 + round_idx)
            self._send_raw(dst, tag, b"")
            self._recv_raw(src, tag)
            dist <<= 1
            round_idx += 1

    # -- async dispatch ----------------------------------------------------------

    def _dispatch_send(self, fn: Callable[[], Optional[bytes]]) -> Request:
        """Run a send closure on the per-worker sender thread, in order."""
        with self._sender_lock:
            if self._send_queue is None:
                self._send_queue = queue.Queue()
                self._sender_thread = threading.Thread(
                    target=self._sender_loop,
                    daemon=True,
                    name=f"sender-{self.rank}",
                )
                self._sender_thread.start()
        # A send future's plain wait() is bounded like a receive, so a
        # wedged peer (full buffer, nothing draining) surfaces as an error.
        req = _FutureRequest(default_timeout=self._recv_timeout)
        self._send_queue.put((fn, req))
        return req

    def _sender_loop(self) -> None:
        assert self._send_queue is not None
        while True:
            item = self._send_queue.get()
            if item is None:
                return
            fn, req = item
            try:
                req._set(fn())
            except BaseException as exc:  # noqa: BLE001 - delivered via wait
                req._fail(exc)

    def _close_async(self) -> None:
        if self._send_queue is not None:
            self._send_queue.put(None)
            assert self._sender_thread is not None
            self._sender_thread.join(timeout=10.0)


class SubsetComm(_SocketComm):
    """A logical-rank view of one worker's mesh endpoint for a subset job.

    The sort service schedules a K'-worker job onto K' of a standing
    mesh's K workers, overlapping it with other jobs on the disjoint
    remainder.  Each member builds a ``SubsetComm`` over its base
    endpoint: logical rank ``i`` maps onto global rank ``members[i]``,
    the base's sockets, per-destination send locks, pacer, and mailbox
    are shared (no new connections, no new reader threads — the base
    readers keep feeding the one mailbox, keyed by *global* source), and
    every inherited primitive — barriers, broadcast trees, the async
    sender — operates purely in logical coordinates.  A program written
    for a K'-node cluster therefore runs unmodified, and byte-identically
    to a dedicated K'-worker mesh.

    Isolation between overlapping jobs rests on three mechanisms:

    * per-job tag windows (:meth:`Comm.begin_job` with coordinator-unique
      sequence numbers) keep concurrent jobs' frames from ever aliasing;
    * per-source mailbox closure means a worker death fails only the
      jobs whose subset contains the dead rank — neighbours never see it;
    * receives poll the job's abort flag (a coordinator
      ``("ctl", seq, ("abort", reason))`` frame, see
      :meth:`~repro.runtime.program.JobControl.abort_reason`) in short
      slices, so members of a job the coordinator already failed
      elsewhere unblock promptly instead of waiting out the timeout.

    Workers run one job at a time, so the base endpoint is never used
    concurrently with a subset built over it.
    """

    _ABORT_POLL = 0.1

    def __init__(
        self,
        base: _SocketComm,
        members: Sequence[int],
        epoch: Optional[int] = None,
    ) -> None:
        members = list(members)
        if len(set(members)) != len(members):
            raise CommError(f"duplicate ranks in subset {members}")
        if base.rank not in members:
            raise CommError(
                f"rank {base.rank} is not a member of subset {members}"
            )
        for g in members:
            if g != base.rank and g not in base._conns:
                raise CommError(
                    f"subset member {g} is not a mesh peer of rank "
                    f"{base.rank} (mesh size {base.size})"
                )
            # Membership-epoch guard: a job planned at epoch E must never
            # talk to a peer whose link was (re)established after E — the
            # rank was recycled by a replacement worker the job's plan
            # knows nothing about.  Reported as a comm error, so the
            # coordinator retries on the current membership.
            if (
                epoch is not None
                and g != base.rank
                and base.peer_epochs.get(g, 0) > epoch
            ):
                raise CommError(
                    f"subset member {g} rejoined at membership epoch "
                    f"{base.peer_epochs[g]}, newer than the job's planning "
                    f"epoch {epoch} (recycled rank)"
                )
        super().__init__(
            members.index(base.rank),
            len(members),
            {
                i: base._conns[g]
                for i, g in enumerate(members)
                if g != base.rank
            },
            base.multicast_mode,
            base._pacer,
            base._recv_timeout,
            base.chunk_bytes,
            base.record_relays,
        )
        self.members = members
        self.epoch = epoch
        self._base = base
        # Share the base's lock objects (a previous subset job's sender
        # thread may still be draining a send to the same peer socket)
        # and its mailbox; raw receives translate logical -> global.
        self._send_locks = {
            i: base._send_locks[g]
            for i, g in enumerate(members)
            if g != base.rank
        }
        self._mailbox = base._mailbox

    def _abort_failure(self, reason: str) -> WorkerFailure:
        return WorkerFailure(
            -1, self._stage, f"job aborted by coordinator: {reason}"
        )

    def _recv_raw(self, src: int, tag: int, timeout=BACKEND_TIMEOUT):
        if timeout is BACKEND_TIMEOUT:
            timeout = self._recv_timeout
        gsrc = self.members[src]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            control = self.job_control
            if control is not None:
                reason = control.abort_reason()
                if reason is not None:
                    raise self._abort_failure(reason)
            if deadline is None:
                slice_t = self._ABORT_POLL
            else:
                slice_t = min(
                    self._ABORT_POLL,
                    max(0.0, deadline - time.monotonic()),
                )
            try:
                return self._mailbox.get(gsrc, tag, slice_t)
            except TimeoutError:
                if deadline is not None and time.monotonic() >= deadline:
                    raise RuntimeTimeoutError(
                        f"recv from worker {src} timed out after {timeout}s "
                        f"in stage {self._stage!r}",
                        peer=src,
                        stage=self._stage,
                        seconds=timeout,
                    ) from None
            except MailboxClosed as exc:
                raise WorkerFailure(
                    src, self._stage, f"peer connection lost: {exc}"
                ) from exc

    def _poll_raw(self, src: int, tag: int) -> Optional[bytes]:
        control = self.job_control
        if control is not None:
            reason = control.abort_reason()
            if reason is not None:
                raise self._abort_failure(reason)
        try:
            return self._mailbox.poll(self.members[src], tag)
        except MailboxClosed as exc:
            raise WorkerFailure(
                src, self._stage, f"peer connection lost: {exc}"
            ) from exc


def _purge_job_frames(mailbox: Mailbox, job_seq: int) -> int:
    """Drop buffered frames belonging to ``job_seq``'s tag windows.

    A subset job that failed (or was aborted) can leave undelivered
    frames in the shared base mailbox.  The full-mesh pools simply tear
    the worker down after a failure, but a resilient service worker
    lives on to serve the next job — so the dead job's frames must be
    reclaimed.  Covers all three namespaces a job receives in: shifted
    user tags, broadcast inner tags, and barrier rounds.
    """
    window = job_seq % _JOB_TAG_WINDOWS

    def match(src: int, tag: int) -> bool:
        if tag >= _BARRIER_NS:
            epoch = (tag - _BARRIER_NS) // 64
            return epoch // _JOB_BARRIER_EPOCH_STRIDE == window
        if tag >= _BCAST_NS:
            return (tag - _BCAST_NS) // JOB_TAG_STRIDE == window
        return tag // JOB_TAG_STRIDE == window

    return mailbox.purge(match)


def _build_mesh(
    k: int,
) -> Dict[Tuple[int, int], Tuple[socket.socket, socket.socket]]:
    """Full mesh: one socketpair per unordered node pair."""
    return {
        (i, j): socket.socketpair()
        for i in range(k)
        for j in range(i + 1, k)
    }


def _mesh_endpoints(
    pairs: Dict[Tuple[int, int], Tuple[socket.socket, socket.socket]],
    rank: int,
) -> Tuple[Dict[int, socket.socket], List]:
    """Rank's own peer sockets plus every inherited fd it must close."""
    conns: Dict[int, socket.socket] = {}
    extra_close: List = []
    for (i, j), (si, sj) in pairs.items():
        if rank == i:
            conns[j] = si
            extra_close.append(sj)
        elif rank == j:
            conns[i] = sj
            extra_close.append(si)
        else:
            extra_close.extend((si, sj))
    return conns, extra_close


def make_socket_comm(
    rank: int,
    size: int,
    conns: Dict[int, socket.socket],
    multicast_mode: MulticastMode,
    rate_bytes_per_s: Optional[float],
    socket_timeout: float,
    chunk_bytes: int,
    record_relays: bool,
) -> _SocketComm:
    """Build a ready :class:`_SocketComm` over an established peer mesh.

    Shared by the forked AF_UNIX workers here and the TCP worker agents in
    :mod:`repro.runtime.tcp` — the mesh transport differs, the endpoint
    machinery (send bounds, pacing, reader threads) is identical.
    """
    # Bound sends at the kernel (SO_SNDTIMEO) so a wedged peer — full
    # buffer, nothing draining — raises in the blocked worker with a
    # traceback naming the stuck send.  SO_SNDTIMEO (unlike settimeout)
    # leaves the reader threads' blocking recv untouched: an idle receive
    # direction is normal; a send that cannot drain for this long is not.
    sndtimeo = struct.pack(
        "ll", int(socket_timeout), int((socket_timeout % 1) * 1e6)
    )
    for s in conns.values():
        s.setsockopt(socket.SOL_SOCKET, socket.SO_SNDTIMEO, sndtimeo)
    pacer = (
        TokenBucket(rate_bytes_per_s) if rate_bytes_per_s is not None else None
    )
    comm = _SocketComm(
        rank,
        size,
        conns,
        multicast_mode,
        pacer,
        socket_timeout,
        chunk_bytes,
        record_relays,
    )
    comm._start_readers()
    return comm


def _setup_worker_comm(
    rank: int,
    size: int,
    conns: Dict[int, socket.socket],
    extra_close: List,
    multicast_mode: MulticastMode,
    rate_bytes_per_s: Optional[float],
    socket_timeout: float,
    chunk_bytes: int,
    record_relays: bool,
) -> _SocketComm:
    """Forked-child comm setup shared by the one-shot and pool workers."""
    # Drop inherited duplicates of other endpoints' fds.  Without this a
    # dead peer's channel never reaches EOF (our own inherited copy of its
    # socket end keeps it open), so failures would only surface via the
    # receive timeout instead of an immediate reader-thread EOF.
    for obj in extra_close:
        try:
            obj.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    return make_socket_comm(
        rank,
        size,
        conns,
        multicast_mode,
        rate_bytes_per_s,
        socket_timeout,
        chunk_bytes,
        record_relays,
    )


def _worker_main(
    rank: int,
    size: int,
    conns: Dict[int, socket.socket],
    extra_close: List,
    factory: ProgramFactory,
    multicast_mode: MulticastMode,
    rate_bytes_per_s: Optional[float],
    result_conn,
    socket_timeout: float,
    chunk_bytes: int,
    record_relays: bool,
) -> None:
    """One-shot worker entry point (runs in the forked child)."""
    from repro.kvpairs.spill import install_spill_cleanup_handler

    install_spill_cleanup_handler()
    comm: Optional[_SocketComm] = None
    try:
        comm = _setup_worker_comm(
            rank,
            size,
            conns,
            extra_close,
            multicast_mode,
            rate_bytes_per_s,
            socket_timeout,
            chunk_bytes,
            record_relays,
        )
        program = factory(comm)
        result = program.run()
        assert comm.traffic is not None
        result_conn.send(
            (
                "ok",
                rank,
                result,
                program.stopwatch.times(),
                comm.traffic.records,
                list(program.STAGES),
            )
        )
    except BaseException:  # noqa: BLE001 - reported to the parent
        result_conn.send(("error", rank, traceback.format_exc(), None, None, None))
    finally:
        if comm is not None:
            comm._close_async()
        result_conn.close()
        for s in conns.values():
            try:
                s.close()
            except OSError:
                pass


class _CtrlReader:
    """Owns the coordinator channel's receive side on a daemon thread.

    Frames are demultiplexed by type: ``("job", ...)`` / ``("stop",)`` /
    channel-EOF land on the inbox queue the control loop pops, while
    mid-job ``("ctl", seq, payload)`` frames are delivered straight into
    the running job's :class:`JobControl` — so the program never has to
    stop working to receive a speculation directive.  Elastic-pool
    ``("roster", info)`` membership updates likewise bypass the inbox
    into the ``on_roster`` callback: they may arrive at any time, idle
    or mid-job, and must never end the control loop.
    """

    _EOF = ("__eof__",)

    def __init__(
        self,
        recv_msg: Callable[[], Tuple],
        on_roster: Optional[Callable[[Dict], None]] = None,
    ) -> None:
        self._recv_msg = recv_msg
        self.inbox: "queue.Queue[Tuple]" = queue.Queue()
        self.job_control: Optional[JobControl] = None
        self.on_roster = on_roster
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="pool-ctrl-reader"
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            try:
                msg = self._recv_msg()
            except (EOFError, OSError, TransportError):
                self.inbox.put(self._EOF)
                return
            if msg[0] == "ctl":
                control = self.job_control
                if control is not None and msg[1] == control.job_seq:
                    control.deliver(msg[2])
                continue
            if msg[0] == "roster":
                callback = self.on_roster
                if callback is not None:
                    try:
                        callback(msg[1])
                    except Exception:  # pragma: no cover - advisory frame
                        pass
                continue
            self.inbox.put(msg)
            if msg[0] != "job":
                return  # "stop" (or anything unknown) ends the loop


class _Heartbeater:
    """Emits ``("hb", rank, job_seq, stage)`` frames while a job runs."""

    def __init__(
        self,
        rank: int,
        job_seq: int,
        comm: Comm,
        send_msg: Callable[[Tuple], None],
        send_lock: threading.Lock,
        interval: float,
    ) -> None:
        self._rank = rank
        self._job_seq = job_seq
        self._comm = comm
        self._send_msg = send_msg
        self._send_lock = send_lock
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"heartbeat-{rank}"
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            beat = ("hb", self._rank, self._job_seq, self._comm.stage)
            try:
                with self._send_lock:
                    self._send_msg(beat)
            except (OSError, ValueError, TransportError):
                return  # coordinator gone; the control loop will notice

    def stop(self) -> None:
        """Stop and join — no heartbeat may trail the final job report."""
        self._stop.set()
        self._thread.join(timeout=10.0)


class WorkerDrain:
    """Signal-safe graceful-shutdown flag for a pool worker.

    ``repro worker`` arms one of these on SIGTERM: :meth:`trigger` (safe
    to call from a signal handler — only an ``Event.set`` and a
    ``Queue.put``) both sets the flag the control loop checks between
    jobs and drops a sentinel on the control inbox so an *idle* worker
    wakes from its blocking ``inbox.get`` immediately.  A busy worker
    finishes its in-flight job, reports the result, and only then exits
    — a mid-shuffle kill would instead cascade ``WorkerFailure`` across
    the whole subset.
    """

    _SENTINEL = ("__drain__",)

    def __init__(self) -> None:
        self._event = threading.Event()
        self._inbox: Optional["queue.Queue[Tuple]"] = None

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def trigger(self) -> None:
        self._event.set()
        inbox = self._inbox
        if inbox is not None:
            inbox.put(self._SENTINEL)


def serve_pool_jobs(
    comm: _SocketComm,
    rank: int,
    recv_msg: Callable[[], Tuple],
    send_msg: Callable[[Tuple], None],
    heartbeat_interval: Optional[float] = None,
    resilient: bool = False,
    drain: Optional[WorkerDrain] = None,
) -> None:
    """The pool worker control loop, over any coordinator transport.

    Each ``("job", seq, builder, payload[, members[, epoch]])`` message rebinds
    the comm to the job's tag window and traffic log
    (:meth:`Comm.begin_job`), builds the node program from the shipped
    ``(builder, payload)``, runs it, and reports the per-job result /
    stage times / traffic back through ``send_msg``.  When the optional
    fifth element ``members`` is present (the sort service's per-job
    worker subsets), the job runs on a :class:`SubsetComm` view over
    ``comm`` instead — logical ranks ``0..len(members)-1`` over the
    listed global ranks — leaving the other workers of the mesh free to
    run a different job concurrently.

    Failure policy is selected by ``resilient``:

    * ``resilient=False`` (the one-job-at-a-time pools): on any job
      failure the worker reports and *returns* (the caller exits).  Its
      closing sockets EOF every peer's reader thread, so blocked peers
      fail fast, and the coordinator re-forms a clean mesh for the next
      job (a mid-shuffle mesh holds arbitrary half-delivered frames — a
      fresh mesh beats resynchronizing).
    * ``resilient=True`` (service workers): the worker reports the
      failure, reclaims the dead job's buffered frames
      (:func:`_purge_job_frames` — per-job tag windows make this exact),
      and stays up for the next job.  The coordinator retries the failed
      job on a fresh sequence number, so nothing ever aliases.

    While a job runs, a heartbeat thread reports the worker's current
    stage every ``heartbeat_interval`` seconds (``None`` disables) — the
    driver's liveness detector and the speculation policy both feed on
    these.  A reader thread owns ``recv_msg`` for the whole loop, routing
    mid-job ``("ctl", seq, payload)`` frames into the job comm's
    :class:`JobControl`.  The heartbeater is stopped *and joined* before
    the final ok/error report, so the report is always the channel's
    last frame for the job.

    Failures are reported typed: a :class:`CommError` (peer death, comm
    timeout — including the cascade EOFs every survivor sees when one
    worker crashes) reports as ``("comm_error", rank, seq, tb)``, any
    other exception — a genuine program bug — as ``("error", ...)``.

    ``recv_msg`` must raise ``EOFError`` / ``OSError`` /
    :class:`TransportError` once the coordinator is gone; any non-``job``
    message (``("stop",)``) also ends the loop, as does a
    :class:`WorkerDrain` trigger once the in-flight job (if any) has
    reported.  Shared by the forked AF_UNIX pool workers here
    (transport: a duplex pipe) and the TCP worker agents in
    :mod:`repro.runtime.tcp` (transport: framed pickles on the
    rendezvous connection).
    """
    send_lock = threading.Lock()

    def on_roster(info: Dict) -> None:
        # Membership grew: track the new mesh size so later subsets can
        # name the joined rank.  The peer link itself arrives via the
        # worker's mesh-growth acceptor (add_peer), not this frame.
        new_size = info.get("size")
        if isinstance(new_size, int) and new_size > comm.size:
            comm.size = new_size

    reader = _CtrlReader(recv_msg, on_roster=on_roster)
    if drain is not None:
        drain._inbox = reader.inbox

    def report(msg: Tuple) -> None:
        with send_lock:
            send_msg(msg)

    while True:
        msg = reader.inbox.get()
        if msg[0] != "job":
            return  # "stop", drain sentinel, or coordinator EOF
        job_seq, builder, payload = msg[1], msg[2], msg[3]
        members: Optional[List[int]] = msg[4] if len(msg) > 4 else None
        epoch: Optional[int] = msg[5] if len(msg) > 5 else None
        traffic = TrafficLog()
        heartbeater: Optional[_Heartbeater] = None
        job_comm: Comm = comm
        failed = False
        try:
            if members is not None:
                # A malformed subset raises CommError straight into the
                # typed handlers below — reported, never fatal here.  A
                # member that rejoined an instant ago may still be mid-
                # integration on this endpoint; wait briefly for its link.
                comm.wait_for_peers(members)
                job_comm = SubsetComm(comm, members, epoch=epoch)
            job_comm.begin_job(job_seq, traffic)
            job_comm.job_control = JobControl(job_seq)
            reader.job_control = job_comm.job_control
            if heartbeat_interval is not None and heartbeat_interval > 0:
                heartbeater = _Heartbeater(
                    rank, job_seq, job_comm, send_msg, send_lock,
                    heartbeat_interval,
                )
            program = builder(job_comm, payload)
            result = program.run()
            report_msg = (
                "ok",
                rank,
                job_seq,
                result,
                program.stopwatch.times(),
                traffic.records,
                list(program.STAGES),
            )
            if heartbeater is not None:
                heartbeater.stop()
                heartbeater = None
            report(report_msg)
        except CommError:
            # Infrastructure: a peer died or a comm wait expired.  The
            # survivors of one crash all land here via the EOF cascade.
            failed = True
            if heartbeater is not None:
                heartbeater.stop()
                heartbeater = None
            try:
                report(("comm_error", rank, job_seq, traceback.format_exc()))
            except (OSError, ValueError, TransportError):
                return
        except BaseException as exc:  # noqa: BLE001 - reported to coordinator
            failed = True
            if heartbeater is not None:
                heartbeater.stop()
                heartbeater = None
            try:
                report(("error", rank, job_seq, traceback.format_exc()))
            except (OSError, ValueError, TransportError):
                return
            if isinstance(exc, SystemExit):
                # Drain escalation (second SIGTERM) or an explicit
                # in-program exit: the coordinator has its error report;
                # now really exit, with the honest nonzero status.
                raise
        finally:
            reader.job_control = None
            job_comm.job_control = None
            if heartbeater is not None:
                heartbeater.stop()
            if job_comm is not comm:
                # The subset view shares the base sockets; only its
                # private sender thread needs tearing down.  A failed
                # (or aborted) job may leave frames for its tag windows
                # in the shared mailbox — reclaim them.
                job_comm._close_async()
                _purge_job_frames(comm._mailbox, job_seq)
        if failed and not resilient:
            return
        if drain is not None and drain.requested:
            return


def _pool_worker_main(
    rank: int,
    size: int,
    conns: Dict[int, socket.socket],
    extra_close: List,
    ctrl_conn,
    multicast_mode: MulticastMode,
    rate_bytes_per_s: Optional[float],
    socket_timeout: float,
    chunk_bytes: int,
    record_relays: bool,
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Pool worker entry point (forked child): :func:`serve_pool_jobs`
    over the duplex control pipe, after the one-time mesh/comm setup."""
    from repro.kvpairs.spill import SpillDir, install_spill_cleanup_handler

    # Spill hygiene: a terminated pool worker must still remove its
    # per-job spill dirs (SIGTERM -> SystemExit -> atexit hooks), and a
    # fresh pool (e.g. re-forked after an injected SIGKILL) reaps any
    # spill dirs a crashed predecessor left behind.
    install_spill_cleanup_handler()
    SpillDir.sweep_stale()
    comm: Optional[_SocketComm] = None
    try:
        comm = _setup_worker_comm(
            rank,
            size,
            conns,
            extra_close,
            multicast_mode,
            rate_bytes_per_s,
            socket_timeout,
            chunk_bytes,
            record_relays,
        )
        serve_pool_jobs(
            comm,
            rank,
            ctrl_conn.recv,
            ctrl_conn.send,
            heartbeat_interval=heartbeat_interval,
        )
    finally:
        if comm is not None:
            comm._close_async()
        try:
            ctrl_conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        for s in conns.values():
            try:
                s.close()
            except OSError:
                pass


class ProcessCluster:
    """K worker processes over an AF_UNIX socket mesh.

    Args:
        size: number of workers (the paper's ``K``).
        multicast_mode: linear or binomial-tree application multicast.
        rate_bytes_per_s: per-worker egress throttle; ``12.5e6`` reproduces
            the paper's 100 Mbps setting. ``None`` disables pacing.
        timeout: overall run timeout in seconds (workers are killed past it);
            also bounds how long any single receive may wait.
        chunk_bytes: maximum raw-frame size for one user payload chunk.
        record_relays: additionally log every physical broadcast hop (kind
            ``"relay"``) to the traffic log.
        heartbeat_interval: how often pool workers report their current
            stage to the driver (seconds); feeds failure detection and
            map speculation.  ``None`` disables heartbeats.
        failure_timeout: a pool worker silent for this long mid-job is
            declared dead with a typed
            :class:`~repro.runtime.errors.WorkerFailure` — no waiting
            for the job timeout or the EOF cascade.
    """

    def __init__(
        self,
        size: int,
        multicast_mode: MulticastMode = MulticastMode.TREE,
        rate_bytes_per_s: Optional[float] = None,
        timeout: float = 300.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        record_relays: bool = False,
        heartbeat_interval: Optional[float] = 0.5,
        failure_timeout: float = 30.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if os.name != "posix":  # pragma: no cover - linux-only environment
            raise RuntimeError("ProcessCluster requires a POSIX fork platform")
        self.size = size
        self.multicast_mode = multicast_mode
        self.rate_bytes_per_s = rate_bytes_per_s
        self.timeout = timeout
        self.chunk_bytes = chunk_bytes
        self.record_relays = record_relays
        self.heartbeat_interval = heartbeat_interval
        self.failure_timeout = failure_timeout

    def run(self, factory: ProgramFactory) -> ClusterResult:
        """Fork workers, run the program, gather results and traffic.

        Raises:
            RuntimeError: if any worker fails or the run times out; the
                worker's traceback text is included.
        """
        ctx = multiprocessing.get_context("fork")
        k = self.size

        pairs = _build_mesh(k)
        parent_conns = []
        processes = []
        try:
            for rank in range(k):
                conns, extra_close = _mesh_endpoints(pairs, rank)
                # Result-pipe read ends (earlier workers' and this one's
                # own) are inherited too; the child drops those copies.
                extra_close.extend(parent_conns)
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                extra_close.append(recv_conn)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        k,
                        conns,
                        extra_close,
                        factory,
                        self.multicast_mode,
                        self.rate_bytes_per_s,
                        send_conn,
                        self.timeout,
                        self.chunk_bytes,
                        self.record_relays,
                    ),
                    name=f"worker-{rank}",
                )
                proc.start()
                send_conn.close()
                parent_conns.append(recv_conn)
                processes.append(proc)
            # Parent no longer needs the mesh fds.
            for si, sj in pairs.values():
                si.close()
                sj.close()

            results: List[Any] = [None] * k
            times: List[Dict[str, float]] = [dict() for _ in range(k)]
            traffic = TrafficLog()
            stages: List[str] = []
            failures: List[str] = []
            for conn in parent_conns:
                if not conn.poll(self.timeout):
                    failures.append("worker result timeout")
                    continue
                status, rank, payload, sw_times, records, prog_stages = conn.recv()
                if status != "ok":
                    failures.append(f"worker {rank}:\n{payload}")
                    continue
                results[rank] = payload
                times[rank] = sw_times
                traffic.extend(records)
                if prog_stages and not stages:
                    stages = prog_stages
            for proc in processes:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
            if failures:
                raise RuntimeError(
                    "ProcessCluster run failed:\n" + "\n".join(failures)
                )
            return assemble_cluster_result(results, times, traffic, stages)
        finally:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for conn in parent_conns:
                conn.close()

    def create_pool(self) -> "_ProcessPool":
        """A persistent worker pool over this cluster configuration.

        The pool forks the K-worker socket mesh once and runs many jobs on
        it (see :class:`_ProcessPool`); :class:`repro.session.Session` is
        the driver-facing API over it.
        """
        return _ProcessPool(self)


class _ProcessPool:
    """K persistent worker processes over one long-lived socket mesh.

    Workers are forked lazily on the first job and then run
    :func:`_pool_worker_main`'s control loop: the per-job cost drops to
    one (builder, payload) pickle per worker plus the job itself — the
    fork + socketpair-mesh + reader-thread setup is paid once per pool,
    not once per job.  Job dispatch and collection are strictly
    sequential (the mesh runs one job at a time).

    Failure policy: any worker error, worker death, or job timeout fails
    that job with :class:`RuntimeError` and tears the workers down; the
    next job transparently re-forks a clean mesh.  A half-failed mesh may
    hold arbitrary in-flight frames, so a fresh fork is both simpler and
    strictly more robust than in-place resynchronization — and keeps the
    "session survives a failed job" contract cheap.
    """

    def __init__(self, cluster: ProcessCluster) -> None:
        self._cluster = cluster
        self.size = cluster.size
        self._ctx = multiprocessing.get_context("fork")
        self._procs: List = []
        self._ctrl: List = []
        self._job_seq = 0

    @property
    def running(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def _start(self) -> None:
        k = self.size
        pairs = _build_mesh(k)
        ctrl_conns: List = []
        procs: List = []
        try:
            for rank in range(k):
                conns, extra_close = _mesh_endpoints(pairs, rank)
                # Earlier workers' parent-side control ends are inherited
                # too; the child drops those copies.
                extra_close.extend(ctrl_conns)
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                extra_close.append(parent_conn)
                proc = self._ctx.Process(
                    target=_pool_worker_main,
                    args=(
                        rank,
                        k,
                        conns,
                        extra_close,
                        child_conn,
                        self._cluster.multicast_mode,
                        self._cluster.rate_bytes_per_s,
                        self._cluster.timeout,
                        self._cluster.chunk_bytes,
                        self._cluster.record_relays,
                        self._cluster.heartbeat_interval,
                    ),
                    name=f"pool-worker-{rank}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                ctrl_conns.append(parent_conn)
                procs.append(proc)
        finally:
            # The pool no longer needs the mesh fds (workers hold theirs).
            for si, sj in pairs.values():
                si.close()
                sj.close()
        self._procs = procs
        self._ctrl = ctrl_conns

    def _broadcast_ctl(self, seq: int, payload: Any) -> None:
        """Best-effort mid-job control frame to every worker."""
        for conn in self._ctrl:
            try:
                conn.send(("ctl", seq, payload))
            except (OSError, ValueError):  # pragma: no cover - dying pool
                pass

    def run_job(self, prepared: PreparedJob) -> ClusterResult:
        """Dispatch one prepared job to every worker and gather the result.

        While collecting, worker heartbeats feed a :class:`JobMonitor`:
        a worker silent past the cluster's ``failure_timeout`` is
        declared dead immediately, and (for jobs prepared with a
        speculation config) straggling map shards get a backup launched
        on an already-finished worker via a ``("ctl", ...)`` broadcast.

        Raises:
            WorkerFailure: a worker died or went silent mid-job
                (infrastructure — the session layer may retry); the pool
                is torn down and the next job restarts it.
            RuntimeError: a worker's program raised (a genuine job bug,
                never retried) or the job timed out; the worker's
                traceback text is included.
        """
        k = self.size
        prepared.check_size(k)
        if not self.running:
            self.close()
            self._start()
        seq = self._job_seq
        self._job_seq += 1
        try:
            for rank, conn in enumerate(self._ctrl):
                conn.send(
                    ("job", seq, prepared.builder, prepared.payloads[rank])
                )
        except (OSError, ValueError) as exc:
            self.close()
            raise WorkerFailure(
                -1, "dispatch", f"worker pool died while dispatching job: {exc}"
            ) from exc

        results: List[Any] = [None] * k
        times: List[Dict[str, float]] = [dict() for _ in range(k)]
        traffic = TrafficLog()
        stages: List[str] = []
        program_errors: List[str] = []
        infra_failures: List[Tuple[int, str, str]] = []  # (rank, stage, cause)
        pending: Dict[Any, int] = {
            conn: rank for rank, conn in enumerate(self._ctrl)
        }
        monitor = JobMonitor(
            k, self._cluster.failure_timeout, prepared.speculation
        )
        deadline = time.monotonic() + self._cluster.timeout
        # After the first failure, keep draining reports for a short grace
        # window: the survivors' cascade (comm_error / EOF) and — crucially
        # — any root-cause program error must be classified before raising.
        grace_deadline: Optional[float] = None
        while pending:
            now = time.monotonic()
            if now >= deadline:
                if not (program_errors or infra_failures):
                    infra_failures.append((
                        -1,
                        "unknown",
                        f"job timed out after {self._cluster.timeout}s "
                        f"(ranks {sorted(pending.values())} pending)",
                    ))
                break
            if grace_deadline is not None and now >= grace_deadline:
                break
            if self._cluster.heartbeat_interval:
                try:
                    monitor.check_liveness(pending.values())
                except WorkerFailure as failure:
                    infra_failures.append(
                        (failure.rank, failure.stage, failure.cause)
                    )
                    for conn, rank in list(pending.items()):
                        if rank == failure.rank:
                            del pending[conn]
            for straggler, backup in monitor.speculation_directives():
                self._broadcast_ctl(seq, ("speculate", straggler, backup))
            if (program_errors or infra_failures) and grace_deadline is None:
                grace_deadline = time.monotonic() + min(
                    1.0, self._cluster.timeout
                )
            wait_for = monitor.poll_timeout(
                min(deadline, grace_deadline or deadline) - time.monotonic()
            )
            for conn in _conn_wait(list(pending), wait_for):
                rank = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del pending[conn]
                    infra_failures.append((
                        rank,
                        monitor.stage_of(rank),
                        "worker process died mid-job (control channel EOF)",
                    ))
                    continue
                if msg[0] == "hb":
                    if msg[2] == seq:
                        monitor.heartbeat(msg[1], msg[3])
                    continue
                del pending[conn]
                monitor.result(rank)
                if msg[0] == "comm_error":
                    infra_failures.append((
                        msg[1],
                        monitor.stage_of(msg[1]),
                        f"comm failure:\n{msg[3]}",
                    ))
                    continue
                if msg[0] != "ok":
                    program_errors.append(f"worker {msg[1]}:\n{msg[3]}")
                    continue
                _, _, wseq, payload, sw_times, records, prog_stages = msg
                assert wseq == seq, f"job sequence mismatch: {wseq} != {seq}"
                results[rank] = payload
                times[rank] = sw_times
                traffic.extend(records)
                if prog_stages and not stages:
                    stages = prog_stages
        if program_errors or infra_failures:
            self.close()
            raise _job_failure(
                "ProcessCluster", program_errors, infra_failures
            )
        return assemble_cluster_result(results, times, traffic, stages)

    def close(self) -> None:
        """Stop the workers (idempotent); a later job restarts the pool."""
        for conn in self._ctrl:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():
                # SIGTERM stays pending on a stopped (SIGSTOP) worker; only
                # SIGKILL reaps it, and close() must never hang.
                proc.kill()
                proc.join()
        for conn in self._ctrl:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._procs = []
        self._ctrl = []

    def __enter__(self) -> "_ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
