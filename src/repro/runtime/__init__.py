"""Message-passing runtime: an MPI-like substrate built from scratch.

The paper implements both algorithms in C++ over Open MPI (``MPI_Send``,
``MPI_Bcast``, ``MPI_Comm_split``).  This package provides the equivalent
communication layer for the reproduction:

* :mod:`repro.runtime.api` — the :class:`Comm` interface (blocking send /
  recv / bcast / barrier plus non-blocking isend / irecv / ibcast with
  :class:`Request` handles) that node programs are written against;
* :mod:`repro.runtime.inproc` — a threaded in-process backend used for
  functional tests and byte accounting;
* :mod:`repro.runtime.process` — a multiprocessing backend over an AF_UNIX
  socket mesh with optional token-bucket rate limiting (the paper throttles
  EC2 NICs to 100 Mbps with ``tc``);
* :mod:`repro.runtime.tcp` — a multi-host backend: ``repro worker`` agents
  dial a rendezvous coordinator over TCP and form the same K×K mesh across
  real machines (the paper's actual EC2 deployment shape);
* :mod:`repro.runtime.traffic` — traffic accounting that counts each
  multicast payload once (the paper's communication-load convention) while
  also tracking raw wire bytes.
"""

from repro.runtime.api import Comm, CommError, MulticastMode, Request, wait_all
from repro.runtime.traffic import TrafficLog, TrafficRecord
from repro.runtime.program import (
    ClusterResult,
    NodeProgram,
    pipelined_multicast_shuffle,
)
from repro.runtime.inproc import ThreadCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.tcp import TcpCluster

__all__ = [
    "Comm",
    "CommError",
    "MulticastMode",
    "Request",
    "wait_all",
    "TrafficLog",
    "TrafficRecord",
    "NodeProgram",
    "ClusterResult",
    "pipelined_multicast_shuffle",
    "ThreadCluster",
    "ProcessCluster",
    "TcpCluster",
]
