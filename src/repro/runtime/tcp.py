"""Multi-host TCP cluster backend: real workers on real machines.

The paper's numbers were measured on a standing EC2 cluster, not forked
processes on one box.  This module is the third ``Cluster`` backend,
closing that gap: ``K`` independent *worker agents* (``repro worker
--join HOST:PORT``, typically one per machine) dial a rendezvous
coordinator over TCP, complete a versioned rank-assignment handshake, and
form the full K×K peer mesh over plain TCP sockets.  From there
everything is shared with the multiprocessing backend:
:func:`~repro.runtime.transport.send_frame` framing, the zero-copy
``sendmsg`` / ``recv_into`` data plane of
:class:`~repro.runtime.process._SocketComm`, and the
:func:`~repro.runtime.process.serve_pool_jobs` control loop — so
``Session.submit()`` works unchanged and outputs are byte-identical with
:class:`~repro.runtime.process.ProcessCluster`.

Rendezvous protocol (all control messages are length-prefixed frames on
the worker's coordinator connection; fixed-layout structs for the two
messages that must parse across versions, pickled tuples after that)::

    worker -> coord   HELLO   magic, protocol version, requested rank (-1 = any)
    coord  -> worker  WELCOME rank, size, mesh nonce, cluster config
                      (or REJECT reason: bad magic/version, duplicate rank)
    worker -> coord   LISTENING advertised host:port of its peer listener
    coord  -> worker  ROSTER  all K advertised addresses
    (workers dial every lower rank, accept every higher; each peer link
     starts with a PEER_HELLO frame carrying the mesh nonce + dialer rank)
    worker -> coord   READY
    coord  -> worker  ("job", seq, builder, payload) ...  |  ("stop",)

Elastic rejoin (resilient pools, i.e. the sort service): the rendezvous
listener keeps accepting after the mesh forms.  A replacement worker runs
the same handshake; its ROSTER is a *dict* ``{"peers": {rank: (host,
port)}, ...}`` of the live peers' standing mesh listeners (resilient
workers keep theirs open and splice fresh links in via a join-acceptor
thread), its WELCOME carries the membership ``epoch`` it joined at, and
live workers learn the new size via a ``("roster", info)`` control frame.

Every step is bounded: the coordinator's accept/handshake reads and the
worker's connect/handshake reads all time out with errors naming the
stuck step, a version or rank conflict is rejected with a reason instead
of a hang, and a worker that dies mid-handshake surfaces as a clean
``RuntimeError`` on the driver.  After the mesh is up, peer death
detection matches the process backend exactly: a dead worker's closing
sockets EOF every peer's reader thread, the survivors' jobs fail fast,
report, and exit, and the job's :class:`~repro.session.JobHandle` carries
the error while the session object survives.

Failure policy parity with ``_ProcessPool``: any worker error or death
tears the whole pool down (a mid-shuffle mesh holds arbitrary
half-delivered frames).  The coordinator cannot re-fork remote workers,
so the *next* job re-opens the rendezvous and waits ``connect_timeout``
for K fresh (or supervisor-restarted) workers to join; run workers under
a restart loop to get the process backend's transparent-restart behavior.

Trust model: job dispatch pickles ``(builder, payload)`` to workers and
results back — run this only between mutually trusted hosts on a private
network, exactly like the paper's EC2 security group (pickle grants the
coordinator arbitrary code execution on workers, which is also what lets
``Session`` ship any prepared job unchanged).
"""

from __future__ import annotations

import os
import pickle
import selectors
import signal
import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.api import DEFAULT_CHUNK_BYTES, MulticastMode
from repro.runtime.errors import WorkerFailure, job_failure
from repro.runtime.monitor import JobMonitor
from repro.runtime.process import (
    WorkerDrain,
    _SocketComm,
    make_socket_comm,
    serve_pool_jobs,
)
from repro.runtime.program import (
    ClusterResult,
    PreparedJob,
    assemble_cluster_result,
)
from repro.runtime.traffic import TrafficLog
from repro.runtime.transport import TransportError, recv_frame, send_frame

__all__ = [
    "PROTOCOL_VERSION",
    "TcpCluster",
    "TcpClusterError",
    "TcpHandshakeError",
    "parse_address",
    "run_worker",
]

#: Bumped whenever the rendezvous protocol or the job wire format changes
#: incompatibly; coordinator and workers must match exactly.  v2: job
#: frames may carry a fifth ``members`` element (per-job worker subsets,
#: see :class:`~repro.runtime.process.SubsetComm`) — a v1 worker would
#: fail to unpack them, so the sort service requires v2 agents.  v3:
#: PEER_HELLO grew a membership-epoch field and the rendezvous accepts
#: mid-flight rejoins (elastic service pools) — a v2 worker would
#: mis-unpack the peer handshake, so the mesh requires v3 agents.
PROTOCOL_VERSION = 3

_MAGIC = b"CODEDTS1"
#: HELLO: magic, protocol version, requested rank (-1 = assign any).
_HELLO = struct.Struct("<8sIi")
#: PEER_HELLO: magic, mesh nonce, dialer rank, membership epoch the
#: dialer joined at (0 for the initial rendezvous mesh).
_PEER_HELLO = struct.Struct("<8sQIQ")

#: Frame tags on control / peer-handshake links (one kind per link state,
#: so a frame of the wrong tag is a protocol error, not a misroute).
_TAG_HELLO = 1
_TAG_CTRL = 2
_TAG_PEER = 3


class TcpClusterError(RuntimeError):
    """Raised when the rendezvous or a worker's mesh setup fails."""


class TcpHandshakeError(TcpClusterError):
    """The coordinator rejected this worker (version/rank conflict)."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"tcp://host:port"`` or ``"host:port"`` -> ``(host, port)``.

    IPv6 literals use the usual bracket form (``tcp://[::1]:4000``); the
    brackets are stripped from the returned host.
    """
    spec = address
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://"):]
    host, sep, port_s = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"cluster address must be tcp://HOST:PORT, got {address!r}"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(
            f"cluster address must be tcp://HOST:PORT, got {address!r}"
        ) from None
    return host, port


# ---------------------------------------------------------------------------
# Control-plane framing: fixed structs for HELLO/PEER_HELLO, pickles after.
# ---------------------------------------------------------------------------


def _send_msg(sock: socket.socket, obj: Any, tag: int = _TAG_CTRL) -> None:
    send_frame(sock, tag, pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


def _recv_msg(sock: socket.socket, tag: int = _TAG_CTRL) -> Any:
    got, payload = recv_frame(sock)
    if got != tag:
        raise TransportError(f"expected control frame tag {tag}, got {got}")
    return pickle.loads(bytes(payload))


def _recv_ctrl(sock: socket.socket, step: str) -> Any:
    """Receive one control message, naming ``step`` in timeout/EOF errors."""
    try:
        return _recv_msg(sock)
    except (OSError, TransportError) as exc:
        raise TcpClusterError(f"{step}: {exc}") from exc


def _bound_sends(sock: socket.socket, timeout: float) -> None:
    """Bound blocking sends at the kernel (SO_SNDTIMEO), like the mesh
    sockets in :func:`~repro.runtime.process.make_socket_comm`: a wedged
    peer (connection up, nothing draining) raises instead of hanging a
    job dispatch or a result report forever."""
    sock.setsockopt(
        socket.SOL_SOCKET,
        socket.SO_SNDTIMEO,
        struct.pack("ll", int(timeout), int((timeout % 1) * 1e6)),
    )


# ---------------------------------------------------------------------------
# Worker agent.
# ---------------------------------------------------------------------------


def _dial(
    host: str, port: int, connect_timeout: float
) -> socket.socket:
    """Connect with retry until ``connect_timeout`` (coordinator may start
    after the workers; ``repro worker`` should not care about ordering)."""
    deadline = time.monotonic() + connect_timeout
    last: Optional[Exception] = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TcpClusterError(
                f"could not connect to {host}:{port} within "
                f"{connect_timeout:.1f}s: {last}"
            )
        try:
            sock = socket.create_connection(
                (host, port), timeout=min(remaining, 5.0)
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(min(0.2, max(0.0, deadline - time.monotonic())))


def _form_mesh(
    rank: int,
    size: int,
    roster: List[Tuple[str, int]],
    listener: socket.socket,
    nonce: int,
    handshake_timeout: float,
) -> Dict[int, socket.socket]:
    """Build this rank's K-1 peer links: dial lower ranks, accept higher.

    Dial-then-accept needs no threads: every peer listener is already in
    ``listen()`` before the coordinator publishes the roster, so dials
    land in the backlog even while the target is itself still dialing.
    The nonce (minted per pool generation) keeps a stale worker of an
    earlier, torn-down mesh from splicing into this one.
    """
    peers: Dict[int, socket.socket] = {}
    for peer in range(rank):
        host, port = roster[peer]
        sock = _dial(host, port, handshake_timeout)
        sock.settimeout(handshake_timeout)
        send_frame(
            sock, _TAG_PEER, _PEER_HELLO.pack(_MAGIC, nonce, rank, 0)
        )
        peers[peer] = sock
    listener.settimeout(handshake_timeout)
    while len(peers) < size - 1:
        try:
            sock, _ = listener.accept()
        except socket.timeout:
            missing = sorted(set(range(size)) - set(peers) - {rank})
            raise TcpClusterError(
                f"rank {rank}: peers {missing} did not dial in within "
                f"{handshake_timeout:.1f}s"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(handshake_timeout)
        try:
            tag, payload = recv_frame(sock)
            magic, got_nonce, peer, _epoch = _PEER_HELLO.unpack(bytes(payload))
            if tag != _TAG_PEER or magic != _MAGIC or got_nonce != nonce:
                raise TransportError("peer hello mismatch")
        except (OSError, TransportError, struct.error):
            sock.close()  # stray/stale connection; keep waiting for peers
            continue
        if peer in peers or not rank < peer < size:
            sock.close()
            continue
        peers[peer] = sock
    for sock in peers.values():
        sock.settimeout(None)
    return peers


def _join_mesh(
    rank: int,
    peer_addrs: Dict[int, Tuple[str, int]],
    nonce: int,
    epoch: int,
    handshake_timeout: float,
) -> Dict[int, socket.socket]:
    """Mid-flight join: dial every live peer's standing mesh listener.

    Unlike :func:`_form_mesh`, a joiner dials *everyone* — resilient
    workers keep their peer listeners open after the initial mesh forms
    (see :func:`_serve_mesh_joins`), so no accept side is needed here.
    The PEER_HELLO carries the membership epoch the coordinator assigned
    this incarnation, letting peers stamp the link for the recycled-rank
    guard in :class:`~repro.runtime.process.SubsetComm`.
    """
    peers: Dict[int, socket.socket] = {}
    try:
        for peer, (host, port) in sorted(peer_addrs.items()):
            if peer == rank:
                continue
            sock = _dial(host, port, handshake_timeout)
            sock.settimeout(handshake_timeout)
            send_frame(
                sock, _TAG_PEER, _PEER_HELLO.pack(_MAGIC, nonce, rank, epoch)
            )
            sock.settimeout(None)
            peers[peer] = sock
    except BaseException:
        for sock in peers.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        raise
    return peers


def _serve_mesh_joins(
    listener: socket.socket,
    comm: _SocketComm,
    nonce: int,
    handshake_timeout: float,
    say,
) -> None:
    """Accept replacement peers on the standing mesh listener (thread).

    Resilient workers run this after mesh-up: a rejoining worker dials
    every live peer (see :func:`_join_mesh`), and this loop validates its
    nonce-guarded PEER_HELLO and splices the fresh link into the live
    comm via :meth:`~repro.runtime.process._SocketComm.add_peer` — the
    epoch in the hello stamps the link so jobs planned before the join
    refuse the recycled rank.  Exits when the listener closes.
    """
    while True:
        try:
            sock, _ = listener.accept()
        except OSError:
            return  # listener closed: worker shutting down
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(handshake_timeout)
            tag, payload = recv_frame(sock)
            magic, got_nonce, peer, epoch = _PEER_HELLO.unpack(bytes(payload))
            if tag != _TAG_PEER or magic != _MAGIC or got_nonce != nonce:
                raise TransportError("peer hello mismatch")
        except (OSError, TransportError, struct.error):
            try:
                sock.close()  # stray/stale dialer; keep accepting
            except OSError:  # pragma: no cover
                pass
            continue
        if peer == comm.rank:
            sock.close()
            continue
        sock.settimeout(None)
        comm.add_peer(peer, sock, epoch=epoch)
        say(f"peer {peer} rejoined the mesh (epoch {epoch})")


def run_worker(
    join: str,
    rank: Optional[int] = None,
    advertise: Optional[str] = None,
    connect_timeout: float = 30.0,
    handshake_timeout: float = 30.0,
    quiet: bool = False,
) -> int:
    """One worker agent: rendezvous, mesh up, serve jobs until stopped.

    Args:
        join: coordinator address, ``tcp://HOST:PORT`` or ``HOST:PORT``.
        rank: request this specific rank (the coordinator rejects
            duplicates); ``None`` takes the lowest free one.
        advertise: hostname/IP peers should dial for this worker's mesh
            listener; defaults to the local address of the coordinator
            connection (right whenever peers share the coordinator's
            network path).
        connect_timeout: how long to keep retrying the coordinator dial.
        handshake_timeout: per-step bound for rendezvous and mesh setup.

    Returns:
        0 after a clean ``stop`` / coordinator shutdown.

    Raises:
        TcpHandshakeError: the coordinator rejected this worker.
        TcpClusterError: a rendezvous/mesh step failed or timed out.
    """
    host, port = parse_address(join)

    def say(msg: str) -> None:
        if not quiet:
            print(f"[worker] {msg}", flush=True)

    # Spill hygiene: remove any spill dirs a SIGKILLed predecessor on
    # this host leaked, and arrange for our own to be removed even if the
    # supervisor stops us with SIGTERM mid-job.
    from repro.kvpairs.spill import SpillDir, install_spill_cleanup_handler

    install_spill_cleanup_handler()
    for stale in SpillDir.sweep_stale():
        say(f"reaped stale spill dir {stale}")

    # Graceful drain: the first SIGTERM lets an in-flight job finish and
    # report before the agent exits (a mid-shuffle death would cascade
    # WorkerFailure across the whole subset); a second SIGTERM means the
    # supervisor is serious — exit now (SystemExit still runs the spill
    # cleanup atexit hooks installed above).
    drain = WorkerDrain()
    prev_sigterm = None

    def _on_sigterm(signum, frame):
        if drain.requested:
            raise SystemExit(128 + signum)
        say("SIGTERM: draining (finishing in-flight job, then exiting)")
        drain.trigger()

    try:
        prev_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        drain = None

    ctrl = _dial(host, port, connect_timeout)
    listener: Optional[socket.socket] = None
    comm: Optional[_SocketComm] = None
    peers: Dict[int, socket.socket] = {}
    try:
        ctrl.settimeout(handshake_timeout)
        send_frame(
            ctrl,
            _TAG_HELLO,
            _HELLO.pack(_MAGIC, PROTOCOL_VERSION, -1 if rank is None else rank),
        )
        msg = _recv_ctrl(ctrl, "waiting for rank assignment")
        if msg[0] == "reject":
            raise TcpHandshakeError(f"coordinator rejected worker: {msg[1]}")
        if msg[0] != "welcome":
            raise TcpClusterError(f"unexpected rendezvous message {msg[0]!r}")
        cfg = msg[1]
        my_rank, size, nonce = cfg["rank"], cfg["size"], cfg["nonce"]
        say(f"joined {host}:{port} as rank {my_rank}/{size}")

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("", 0))
        listener.listen(size + 4)
        adv_host = advertise or ctrl.getsockname()[0]
        _send_msg(
            ctrl, ("listening", (adv_host, listener.getsockname()[1]))
        )
        msg = _recv_ctrl(ctrl, "waiting for the peer roster")
        if msg[0] != "roster":
            raise TcpClusterError(f"unexpected rendezvous message {msg[0]!r}")
        roster = msg[1]
        my_epoch = int(cfg.get("epoch", 0))
        resilient = bool(cfg.get("resilient", False))
        if isinstance(roster, dict):
            # Mid-flight join: the coordinator sent the live peers'
            # standing listener addresses instead of the dense initial
            # roster — dial them all (no accept side; see _join_mesh).
            peers = _join_mesh(
                my_rank,
                {int(g): tuple(a) for g, a in roster["peers"].items()},
                nonce,
                my_epoch,
                handshake_timeout,
            )
        else:
            peers = _form_mesh(
                my_rank, size, roster, listener, nonce, handshake_timeout
            )
        if not resilient:
            listener.close()
            listener = None

        comm = make_socket_comm(
            my_rank,
            size,
            peers,
            MulticastMode(cfg["multicast_mode"]),
            cfg["rate_bytes_per_s"],
            cfg["timeout"],
            cfg["chunk_bytes"],
            cfg["record_relays"],
        )
        if resilient:
            # Elastic pools: keep the mesh listener open so replacement
            # workers can splice in later; a daemon thread validates and
            # integrates their nonce-guarded peer hellos.
            listener.settimeout(None)
            threading.Thread(
                target=_serve_mesh_joins,
                args=(listener, comm, nonce, handshake_timeout, say),
                name=f"mesh-joins-{my_rank}",
                daemon=True,
            ).start()
        _send_msg(ctrl, ("ready",))
        ctrl.settimeout(None)
        _bound_sends(ctrl, cfg["timeout"])
        say("mesh up, serving jobs")
        serve_pool_jobs(
            comm,
            my_rank,
            lambda: _recv_msg(ctrl),
            lambda msg: _send_msg(ctrl, msg),
            heartbeat_interval=cfg.get("heartbeat_interval", 0.5),
            resilient=bool(cfg.get("resilient", False)),
            drain=drain,
        )
        say("drained" if drain is not None and drain.requested else "stopped")
        return 0
    finally:
        if prev_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, prev_sigterm)
            except ValueError:  # pragma: no cover
                pass
        if comm is not None:
            comm._close_async()
        for sock in ([ctrl] + list(peers.values())) + (
            [listener] if listener is not None else []
        ):
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


# ---------------------------------------------------------------------------
# Coordinator side: the cluster spec and its pool.
# ---------------------------------------------------------------------------


class TcpCluster:
    """K worker agents on real hosts over a TCP mesh (rendezvous owner).

    Constructing the cluster binds the rendezvous listener immediately
    (so ``address`` is known even with port 0) and keeps it open across
    pool generations — workers may dial in before or after the driver
    starts, and replacement workers can rejoin after a failure.

    Drop-in third backend: anything that takes a
    :class:`~repro.runtime.process.ProcessCluster` /
    :class:`~repro.runtime.inproc.ThreadCluster` — ``Session``, the
    ``run_*`` one-shot shims, the CLI — accepts a ``TcpCluster``
    unchanged, and outputs are byte-identical across the three.

    Args:
        size: number of workers (the paper's ``K``).
        address: ``tcp://HOST:PORT`` (or ``HOST:PORT``) to listen on;
            port 0 picks an ephemeral port (see :attr:`address`).
        multicast_mode: linear or binomial-tree application multicast.
        rate_bytes_per_s: per-worker egress throttle, shipped to workers
            at rendezvous; ``12.5e6`` reproduces the paper's 100 Mbps.
        timeout: per-job bound — receives on workers and result
            collection on the coordinator both give up past it.
        chunk_bytes: maximum raw-frame size for one user payload chunk.
        record_relays: additionally log physical broadcast hops.
        connect_timeout: how long a pool start waits for K workers.
        handshake_timeout: per-step bound for rendezvous reads.
        heartbeat_interval: how often workers report their current stage
            on the control connection (shipped in the welcome config);
            feeds failure detection and map speculation.  ``None``
            disables heartbeats.
        failure_timeout: a worker silent for this long mid-job is
            declared dead with a typed
            :class:`~repro.runtime.errors.WorkerFailure`.
        resilient_workers: shipped in the welcome config — workers
            survive a failed job (report, reclaim its frames, serve the
            next) instead of exiting to force a clean re-rendezvous.
            The sort service turns this on; the one-job-at-a-time pool
            path keeps the teardown-and-rejoin policy.
    """

    def __init__(
        self,
        size: int,
        address: str = "tcp://127.0.0.1:0",
        multicast_mode: MulticastMode = MulticastMode.TREE,
        rate_bytes_per_s: Optional[float] = None,
        timeout: float = 300.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        record_relays: bool = False,
        connect_timeout: float = 30.0,
        handshake_timeout: float = 30.0,
        heartbeat_interval: Optional[float] = 0.5,
        failure_timeout: float = 30.0,
        resilient_workers: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        self.size = size
        self.multicast_mode = multicast_mode
        self.rate_bytes_per_s = rate_bytes_per_s
        self.timeout = timeout
        self.chunk_bytes = chunk_bytes
        self.record_relays = record_relays
        self.connect_timeout = connect_timeout
        self.handshake_timeout = handshake_timeout
        self.heartbeat_interval = heartbeat_interval
        self.failure_timeout = failure_timeout
        self.resilient_workers = resilient_workers
        host, port = parse_address(address)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            self._listener.close()
            raise TcpClusterError(
                f"cannot listen on {host}:{port}: {exc}"
            ) from exc
        self._listener.listen(size + 8)
        self.host = host
        self.port = self._listener.getsockname()[1]

    @property
    def address(self) -> str:
        """The bound rendezvous address workers should ``--join``."""
        return f"tcp://{self.host}:{self.port}"

    def create_pool(self) -> "_TcpPool":
        """A persistent worker pool over this rendezvous (see
        :class:`_TcpPool`); :class:`repro.session.Session` is the
        driver-facing API over it."""
        return _TcpPool(self)

    def close(self) -> None:
        """Close the rendezvous listener (idempotent).  Pools already
        running keep their established connections; no new pool can
        start."""
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass

    def __enter__(self) -> "TcpCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TcpCluster(size={self.size}, address={self.address!r})"


class _TcpPool:
    """K rendezvoused TCP workers serving jobs over control connections.

    The driver-side twin of
    :class:`~repro.runtime.process._ProcessPool`, with the fork replaced
    by the rendezvous: ``_start`` admits K workers (handshake, roster,
    mesh, ready), then ``run_job`` ships one pickled ``(builder,
    payload)`` per worker and gathers per-rank results/times/traffic.
    Failure policy matches the process pool — any worker error/death
    fails the job and tears the pool down — except that the next job
    *waits for workers to rejoin* instead of re-forking them.
    """

    def __init__(self, cluster: TcpCluster) -> None:
        self._cluster = cluster
        self.size = cluster.size
        self._ctrl: List[socket.socket] = []
        self._job_seq = 0
        self._nonce = 0
        #: Advertised mesh-listener addresses, by rank, of the current
        #: generation — kept so an elastic ServicePool can hand a
        #: rejoining worker the live peers' addresses (see
        #: :meth:`repro.service.pool.ServicePool._admit_join`).
        self._roster: List[Tuple[str, int]] = []

    @property
    def running(self) -> bool:
        """True while K workers hold quiet control connections.

        Between jobs a healthy control socket has nothing to say, so any
        readable one means EOF (worker died idle) or protocol garbage —
        either way the mesh is unusable and the next job re-rendezvouses.
        """
        if len(self._ctrl) != self.size:
            return False
        readable, _, _ = _select(self._ctrl, 0.0)
        return not readable

    # -- rendezvous ---------------------------------------------------------

    def _start(self) -> None:
        """Admit K workers: handshake each, publish the roster, await
        readiness.  Raises :class:`TcpClusterError` naming the stuck or
        dead rank on any timeout/EOF."""
        k = self.size
        cluster = self._cluster
        self._nonce = int.from_bytes(os.urandom(8), "little")
        deadline = time.monotonic() + cluster.connect_timeout
        ranks: Dict[int, socket.socket] = {}
        try:
            while len(ranks) < k:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TcpClusterError(
                        f"timed out waiting for workers: {len(ranks)}/{k} "
                        f"joined within {cluster.connect_timeout:.1f}s "
                        f"(start the rest with `repro worker --join "
                        f"{cluster.address}`)"
                    )
                cluster._listener.settimeout(remaining)
                try:
                    conn, _ = cluster._listener.accept()
                except socket.timeout:
                    continue
                except OSError as exc:
                    raise TcpClusterError(
                        f"rendezvous listener failed: {exc}"
                    ) from exc
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                conn.settimeout(cluster.handshake_timeout)
                rank = self._admit(conn, ranks)
                if rank is not None:
                    ranks[rank] = conn
            ctrl = [ranks[rank] for rank in range(k)]
            roster: List[Tuple[str, int]] = []
            for rank, conn in enumerate(ctrl):
                msg = _recv_ctrl(
                    conn, f"worker {rank} died before announcing its "
                    f"peer listener"
                )
                if msg[0] != "listening":
                    raise TcpClusterError(
                        f"worker {rank}: unexpected message {msg[0]!r}"
                    )
                roster.append(tuple(msg[1]))
            self._roster = roster
            for conn in ctrl:
                _send_msg(conn, ("roster", roster))
            for rank, conn in enumerate(ctrl):
                msg = _recv_ctrl(
                    conn, f"worker {rank} died during mesh formation"
                )
                if msg[0] != "ready":
                    raise TcpClusterError(
                        f"worker {rank}: unexpected message {msg[0]!r}"
                    )
                conn.settimeout(None)
                _bound_sends(conn, cluster.timeout)
        except BaseException:
            for conn in ranks.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            raise
        self._ctrl = ctrl

    def _admit(
        self, conn: socket.socket, ranks: Dict[int, socket.socket]
    ) -> Optional[int]:
        """Handshake one dialer; assign its rank or reject-and-drop.

        Rejections (bad magic/version, duplicate or out-of-range rank)
        answer with the reason so the worker can exit with a clean error;
        the rendezvous itself keeps waiting for valid workers.  A dialer
        that dies mid-hello is dropped silently (stale backlog entry).
        """
        cluster = self._cluster
        try:
            tag, payload = recv_frame(conn)
        except (OSError, TransportError):
            conn.close()
            return None

        def reject(reason: str) -> None:
            try:
                _send_msg(conn, ("reject", reason))
            except (OSError, TransportError):  # pragma: no cover
                pass
            conn.close()

        try:
            magic, version, want = _HELLO.unpack(bytes(payload))
        except struct.error:
            reject("malformed hello frame")
            return None
        if tag != _TAG_HELLO or magic != _MAGIC:
            reject("not a codedterasort worker hello")
            return None
        if version != PROTOCOL_VERSION:
            reject(
                f"protocol version mismatch: worker speaks {version}, "
                f"coordinator speaks {PROTOCOL_VERSION}"
            )
            return None
        if want < 0:
            rank = min(set(range(self.size)) - set(ranks))
        elif want >= self.size:
            reject(f"rank {want} out of range for a size-{self.size} cluster")
            return None
        elif want in ranks:
            reject(f"duplicate rank: {want} is already taken")
            return None
        else:
            rank = want
        try:
            _send_msg(conn, ("welcome", self.welcome_config(rank)))
        except (OSError, TransportError):
            conn.close()
            return None
        return rank

    def welcome_config(self, rank: int, **extra: Any) -> Dict[str, Any]:
        """The WELCOME config dict for ``rank`` (plus ``extra`` keys).

        New keys ride the config dict, so older workers (which ``.get``
        with defaults) stay compatible — no PROTOCOL_VERSION bump is
        needed for additions.  The elastic join path adds ``epoch``.
        """
        cluster = self._cluster
        cfg: Dict[str, Any] = {
            "rank": rank,
            "size": self.size,
            "nonce": self._nonce,
            "multicast_mode": cluster.multicast_mode.value,
            "rate_bytes_per_s": cluster.rate_bytes_per_s,
            "timeout": cluster.timeout,
            "chunk_bytes": cluster.chunk_bytes,
            "record_relays": cluster.record_relays,
            "heartbeat_interval": cluster.heartbeat_interval,
            "resilient": cluster.resilient_workers,
        }
        cfg.update(extra)
        return cfg

    # -- jobs ---------------------------------------------------------------

    def _broadcast_ctl(self, seq: int, payload: Any) -> None:
        """Best-effort mid-job control frame to every worker."""
        for conn in self._ctrl:
            try:
                _send_msg(conn, ("ctl", seq, payload))
            except (OSError, TransportError):  # pragma: no cover - dying pool
                pass

    def run_job(self, prepared: PreparedJob) -> ClusterResult:
        """Dispatch one prepared job to every worker and gather the result.

        While collecting, worker heartbeats feed a :class:`JobMonitor`
        (exactly like the process pool): a worker silent past the
        cluster's ``failure_timeout`` is declared dead immediately, and
        jobs prepared with a speculation config get straggling map
        shards backed up on finished workers via ``("ctl", ...)``
        broadcasts.

        Raises:
            WorkerFailure: a worker died or went silent mid-job
                (infrastructure — the session layer may retry); the pool
                is torn down and the next job waits for workers to
                rejoin the standing rendezvous.
            RuntimeError: a worker's program raised (a genuine job bug,
                never retried) or the job timed out; the worker's
                traceback text is included.
        """
        k = self.size
        prepared.check_size(k)
        if not self.running:
            self.close()
            self._start()
        seq = self._job_seq
        self._job_seq += 1
        try:
            for rank, conn in enumerate(self._ctrl):
                _send_msg(
                    conn, ("job", seq, prepared.builder, prepared.payloads[rank])
                )
        except (OSError, TransportError) as exc:
            self.close()
            raise WorkerFailure(
                -1, "dispatch", f"worker pool died while dispatching job: {exc}"
            ) from exc

        results: List[Any] = [None] * k
        times: List[Dict[str, float]] = [dict() for _ in range(k)]
        traffic = TrafficLog()
        stages: List[str] = []
        program_errors: List[str] = []
        infra_failures: List[Tuple[int, str, str]] = []  # (rank, stage, cause)
        pending: Dict[socket.socket, int] = {
            conn: rank for rank, conn in enumerate(self._ctrl)
        }
        monitor = JobMonitor(
            k, self._cluster.failure_timeout, prepared.speculation
        )
        deadline = time.monotonic() + self._cluster.timeout
        # After the first failure, drain reports for a short grace window
        # so a root-cause program error is classified before raising (see
        # repro.runtime.errors.job_failure).
        grace_deadline: Optional[float] = None
        while pending:
            now = time.monotonic()
            if now >= deadline:
                if not (program_errors or infra_failures):
                    infra_failures.append((
                        -1,
                        "unknown",
                        f"job timed out after {self._cluster.timeout}s "
                        f"(ranks {sorted(pending.values())} pending)",
                    ))
                break
            if grace_deadline is not None and now >= grace_deadline:
                break
            if self._cluster.heartbeat_interval:
                try:
                    monitor.check_liveness(pending.values())
                except WorkerFailure as failure:
                    infra_failures.append(
                        (failure.rank, failure.stage, failure.cause)
                    )
                    for conn, rank in list(pending.items()):
                        if rank == failure.rank:
                            del pending[conn]
            for straggler, backup in monitor.speculation_directives():
                self._broadcast_ctl(seq, ("speculate", straggler, backup))
            if (program_errors or infra_failures) and grace_deadline is None:
                grace_deadline = time.monotonic() + min(
                    1.0, self._cluster.timeout
                )
            wait_for = monitor.poll_timeout(
                min(deadline, grace_deadline or deadline) - time.monotonic()
            )
            for conn in _select(list(pending), wait_for)[0]:
                rank = pending[conn]
                conn.settimeout(max(1.0, deadline - time.monotonic()))
                try:
                    msg = _recv_msg(conn)
                except (OSError, TransportError) as exc:
                    del pending[conn]
                    infra_failures.append((
                        rank,
                        monitor.stage_of(rank),
                        f"worker died mid-job: {exc}",
                    ))
                    continue
                finally:
                    conn.settimeout(None)
                if msg[0] == "hb":
                    if msg[2] == seq:
                        monitor.heartbeat(msg[1], msg[3])
                    continue
                del pending[conn]
                monitor.result(rank)
                if msg[0] == "comm_error":
                    infra_failures.append((
                        msg[1],
                        monitor.stage_of(msg[1]),
                        f"comm failure:\n{msg[3]}",
                    ))
                    continue
                if msg[0] != "ok":
                    program_errors.append(f"worker {msg[1]}:\n{msg[3]}")
                    continue
                _, _, wseq, payload, sw_times, records, prog_stages = msg
                assert wseq == seq, f"job sequence mismatch: {wseq} != {seq}"
                results[rank] = payload
                times[rank] = sw_times
                traffic.extend(records)
                if prog_stages and not stages:
                    stages = prog_stages
        if program_errors or infra_failures:
            self.close()
            raise job_failure("TcpCluster", program_errors, infra_failures)
        return assemble_cluster_result(results, times, traffic, stages)

    def close(self) -> None:
        """Stop the workers (idempotent); a later job re-rendezvouses.

        Closing the control connections also EOFs workers blocked on
        their job loop; their exits cascade through the mesh, so no
        remote process lingers past its receive timeout.
        """
        for conn in self._ctrl:
            try:
                _send_msg(conn, ("stop",))
            except (OSError, TransportError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._ctrl = []

    def __enter__(self) -> "_TcpPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _select(
    socks: List[socket.socket], timeout: float
) -> Tuple[List[socket.socket], List, List]:
    """``select.select`` on sockets via :mod:`selectors` (no fd limit)."""
    sel = selectors.DefaultSelector()
    try:
        for sock in socks:
            sel.register(sock, selectors.EVENT_READ)
        return (
            [key.fileobj for key, _ in sel.select(timeout)],  # type: ignore[misc]
            [],
            [],
        )
    finally:
        sel.close()
