"""The communication interface node programs are written against.

Mirrors the subset of MPI the paper uses:

* ``send`` / ``recv`` — blocking point-to-point with integer tags
  (``MPI_Send`` / ``MPI_Recv``);
* ``bcast`` — application-layer multicast within an explicit member group
  (``MPI_Bcast`` on a communicator built by ``MPI_Comm_split``); supports a
  *linear* root-sends-to-all mode and a *binomial tree* mode matching Open
  MPI's broadcast algorithm — the tree is what gives the logarithmic
  multicast penalty the paper measures (§V-C);
* ``barrier`` — full synchronization, used between the serial turns of the
  Fig. 9 schedules.

Backends implement the three ``_raw`` primitives; the group algorithms and
traffic accounting live here so every backend behaves identically.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

from repro.runtime.traffic import TrafficLog

#: Tags at or above this value are reserved for internal protocols
#: (broadcast trees, barriers).  User programs must stay below it.
RESERVED_TAG_BASE = 1 << 48

_BCAST_TAG = RESERVED_TAG_BASE + 1
_BARRIER_TAG = RESERVED_TAG_BASE + 2


class CommError(RuntimeError):
    """Raised on protocol misuse (bad ranks, reserved tags, dead peers)."""


class MulticastMode(enum.Enum):
    """How ``bcast`` moves bytes.

    LINEAR: root unicasts to each member in turn — the naive application-
        layer multicast; wall time at the root scales with group size.
    TREE: binomial tree as in Open MPI's ``MPI_Bcast`` — wall time scales
        with ``log2(group size)`` rounds, the behaviour the paper observes.
    """

    LINEAR = "linear"
    TREE = "tree"


class Comm(ABC):
    """Per-node communication endpoint.

    Attributes:
        rank: this node's id in ``range(size)``.
        size: total number of nodes (the paper's ``K``).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        traffic: Optional[TrafficLog] = None,
        multicast_mode: MulticastMode = MulticastMode.LINEAR,
    ) -> None:
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} out of range(size={size})")
        self.rank = rank
        self.size = size
        self.traffic = traffic
        self.multicast_mode = multicast_mode
        self._stage = "init"

    # -- stage attribution ----------------------------------------------------

    def set_stage(self, name: str) -> None:
        """Attribute subsequent traffic to stage ``name``."""
        self._stage = name

    @property
    def stage(self) -> str:
        return self._stage

    # -- backend primitives ----------------------------------------------------

    @abstractmethod
    def _send_raw(self, dst: int, tag: int, payload: bytes) -> None:
        """Deliver ``payload`` to ``dst`` under ``tag`` (blocking ok)."""

    @abstractmethod
    def _recv_raw(self, src: int, tag: int) -> bytes:
        """Block until a message from ``src`` with ``tag`` arrives."""

    @abstractmethod
    def _barrier_raw(self) -> None:
        """Block until all ``size`` nodes have entered the barrier."""

    # -- public API -------------------------------------------------------------

    def send(self, dst: int, tag: int, payload: bytes) -> None:
        """Blocking tagged unicast (logged as one unicast transfer)."""
        self._check_peer(dst)
        self._check_tag(tag)
        if self.traffic is not None:
            self.traffic.record(self._stage, "unicast", self.rank, (dst,), len(payload))
        self._send_raw(dst, tag, payload)

    def recv(self, src: int, tag: int) -> bytes:
        """Blocking tagged receive from a specific source."""
        self._check_peer(src)
        self._check_tag(tag)
        return self._recv_raw(src, tag)

    def bcast(
        self,
        members: Sequence[int],
        root: int,
        tag: int,
        payload: Optional[bytes] = None,
    ) -> bytes:
        """Multicast within ``members``; every member must call this.

        Args:
            members: group ranks; must contain both ``root`` and ``self.rank``
                and hold no duplicates.  All members must pass the same group
                (in any order) and tag.
            root: the sending rank.
            tag: user tag (also namespaces concurrent broadcasts).
            payload: required at the root, ignored elsewhere.

        Returns:
            The payload, at every member (including the root).
        """
        group = tuple(sorted(members))
        if len(set(group)) != len(group):
            raise CommError(f"duplicate members in bcast group {members!r}")
        if root not in group:
            raise CommError(f"root {root} not in group {group}")
        if self.rank not in group:
            raise CommError(f"rank {self.rank} called bcast for group {group}")
        self._check_tag(tag)
        if self.rank == root:
            if payload is None:
                raise CommError("bcast root must provide a payload")
            if self.traffic is not None:
                dsts = tuple(m for m in group if m != root)
                if dsts:
                    self.traffic.record(
                        self._stage, "multicast", root, dsts, len(payload)
                    )
        if len(group) == 1:
            assert payload is not None
            return payload
        inner_tag = _BCAST_TAG + tag
        if self.multicast_mode is MulticastMode.TREE:
            return self._bcast_tree(group, root, inner_tag, payload)
        return self._bcast_linear(group, root, inner_tag, payload)

    def barrier(self) -> None:
        """Block until every rank has reached the barrier."""
        self._barrier_raw()

    # -- broadcast algorithms -----------------------------------------------------

    def _bcast_linear(
        self, group: Tuple[int, ...], root: int, tag: int, payload: Optional[bytes]
    ) -> bytes:
        if self.rank == root:
            assert payload is not None
            for m in group:
                if m != root:
                    self._send_raw(m, tag, payload)
            return payload
        return self._recv_raw(root, tag)

    def _bcast_tree(
        self, group: Tuple[int, ...], root: int, tag: int, payload: Optional[bytes]
    ) -> bytes:
        """Binomial-tree broadcast (MPICH/Open MPI algorithm).

        Members are renumbered relative to the root; in round ``i`` every
        current holder forwards to the member ``2^i`` positions ahead.
        Every non-root receives exactly once, so wire bytes equal the linear
        mode; only the critical path shortens to ``ceil(log2(g))`` rounds.
        """
        g = len(group)
        idx = group.index(self.rank)
        root_idx = group.index(root)
        rel = (idx - root_idx) % g

        data = payload
        # Phase 1 — receive once (non-roots).  Scanning masks upward, the
        # first set bit of ``rel`` names the round in which this member is
        # reached; its parent is ``rel`` with that bit cleared.  The root
        # (rel == 0) never breaks and exits with mask = 2^ceil(log2(g)).
        mask = 1
        while mask < g:
            if rel & mask:
                src_rel = rel - mask
                src = group[(src_rel + root_idx) % g]
                data = self._recv_raw(src, tag)
                break
            mask <<= 1
        # Phase 2 — forward to children: all members rel + m for m below the
        # mask at which we obtained the data.
        mask >>= 1
        while mask > 0:
            if rel + mask < g:
                dst = group[(rel + mask + root_idx) % g]
                assert data is not None
                self._send_raw(dst, tag, data)
            mask >>= 1
        assert data is not None
        return data

    # -- checks ----------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommError(f"peer {peer} out of range(size={self.size})")
        if peer == self.rank:
            raise CommError("self-send/recv is not allowed")

    @staticmethod
    def _check_tag(tag: int) -> None:
        if not 0 <= tag < RESERVED_TAG_BASE:
            raise CommError(
                f"tag {tag} outside user range [0, {RESERVED_TAG_BASE})"
            )


def barrier_tag(round_idx: int) -> int:
    """Internal tag for dissemination-barrier round ``round_idx``."""
    return _BARRIER_TAG + round_idx
