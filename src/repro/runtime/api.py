"""The communication interface node programs are written against.

Mirrors the subset of MPI the paper uses, plus the non-blocking extensions
the pipelined shuffle engine is built on:

* ``send`` / ``recv`` — blocking point-to-point with integer tags
  (``MPI_Send`` / ``MPI_Recv``);
* ``isend`` / ``irecv`` — their non-blocking counterparts
  (``MPI_Isend`` / ``MPI_Irecv``): both return a :class:`Request` handle
  with ``wait`` / ``test``; :func:`wait_all` completes a batch
  (``MPI_Waitall``);
* ``bcast`` / ``ibcast`` — application-layer multicast within an explicit
  member group (``MPI_Bcast`` / ``MPI_Ibcast`` on a communicator built by
  ``MPI_Comm_split``); supports a *linear* root-sends-to-all mode and a
  *binomial tree* mode matching Open MPI's broadcast algorithm — the tree
  is what gives the logarithmic multicast penalty the paper measures
  (§V-C);
* ``barrier`` — full synchronization, used between the serial turns of the
  Fig. 9 schedules.

Non-blocking semantics: ``isend`` hands the payload to the backend's
asynchronous sender and returns immediately; ``irecv`` and a receiving
``ibcast`` return a lazily-completing request that consumes frames as they
arrive (``test`` never blocks, ``wait`` blocks for the remainder).  A
receiving ``ibcast`` in TREE mode at an *interior* tree node forwards to
its children from a background relay thread so the broadcast keeps flowing
even while the local program is busy; leaf receives stay threadless.
Requests must eventually be waited (or tested to completion): an abandoned
receiving request strands its message, and in TREE mode an abandoned
interior relay stalls that subtree.

Every user-level payload travels as a small framing header plus one or more
chunks of at most ``chunk_bytes`` each, so a large transfer never occupies
a backend channel atomically and rate pacing / progress interleaving work
at chunk granularity.  Chunking is invisible to callers and to traffic
accounting (a message is logged once with its logical payload size).

The data plane is buffer-protocol end-to-end (zero-copy):

* **sending** — ``send`` / ``isend`` / ``bcast`` / ``ibcast`` accept either
  one buffer (``bytes`` / ``bytearray`` / ``memoryview``) or an ordered
  *gather list* of buffer parts; the framing prefix and chunk slices are
  prepended/cut as views, so the payload is never re-copied between the
  caller and the backend's wire primitive (the multiprocessing backend
  pushes the gather list straight into ``sendmsg``);
* **receiving** — ``recv`` / ``irecv`` / ``bcast`` / ``ibcast`` take a
  ``copy`` flag.  ``copy=True`` (default) returns owned ``bytes`` as
  before.  ``copy=False`` returns a zero-copy ``memoryview`` into the
  backend's receive arena; the view is *read-only by contract* — mutating
  it corrupts nothing downstream only if the caller has not shared it —
  and it keeps the arena alive for as long as the view (or anything
  borrowing from it, e.g. ``np.frombuffer``) is referenced.

Traffic accounting distinguishes *logical* transfers (one record per
unicast or multicast — the paper's load convention) from *physical* hops:
with ``record_relays=True`` every per-link hop a broadcast takes (root to
member in LINEAR mode; every parent-to-child edge in TREE mode, including
the root's own sends) is additionally logged with kind ``"relay"``, so the
two multicast modes can be compared byte-for-byte per link.  Relay records
are excluded from the default load/wire summaries.

Backends implement the raw primitives (``_send_raw`` / ``_recv_raw`` /
``_poll_raw`` / ``_barrier_raw`` and the async dispatch hooks); the group
algorithms, chunked framing, and traffic accounting live here so every
backend behaves identically.

Internal tags live in namespaces disjoint from user tags *and* from each
other (broadcast, barrier), so long runs can never alias a barrier frame
onto a broadcast tag.  Session worker pools additionally shift each job's
user tags (and barrier epochs) into a per-job window via :meth:`Comm.begin_job`,
so one long-lived endpoint can run many jobs back to back without frames
of adjacent jobs ever sharing a tag.
"""

from __future__ import annotations

import enum
import struct
import threading
import time
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.runtime.traffic import TrafficLog
from repro.testing import faults
from repro.utils import copytrack

#: Tags at or above this value are reserved for internal protocols
#: (broadcast trees, barriers).  User programs must stay below it.
RESERVED_TAG_BASE = 1 << 48

#: Broadcast inner tags: ``_BCAST_NS | user_tag`` — occupies [2^48, 2^49).
_BCAST_NS = 1 << 48
#: Barrier tags: ``_BARRIER_NS + sequence`` — occupies [2^49, 2^50).
_BARRIER_NS = 1 << 49

#: Session worker pools run many jobs over one long-lived endpoint; every
#: job is shifted into its own disjoint window of the user-tag space so a
#: straggler frame from job ``n`` can never alias a receive of job ``n+1``.
#: Inside a session, user tags must stay below the stride.
JOB_TAG_STRIDE = 1 << 32
#: Number of disjoint job windows before the namespace wraps.
_JOB_TAG_WINDOWS = RESERVED_TAG_BASE // JOB_TAG_STRIDE
#: Barrier-epoch stride per job (bounds barriers per job inside a session).
_JOB_BARRIER_EPOCH_STRIDE = 1 << 24

#: Default maximum chunk size for one raw frame of a user payload.
DEFAULT_CHUNK_BYTES = 1 << 20

#: Frame header: number of following chunk frames (0 = payload inline).
_FRAME_PREFIX = struct.Struct("<I")
#: Precomputed inline-payload prefix (the overwhelmingly common case).
_PREFIX_INLINE = _FRAME_PREFIX.pack(0)

#: Sentinel: use the backend's configured receive timeout.
BACKEND_TIMEOUT = object()

#: A single payload buffer (anything exporting the buffer protocol we use).
Buffer = Union[bytes, bytearray, memoryview]
#: One buffer or an ordered gather list of buffers forming one payload.
BufferParts = Union[Buffer, Sequence[Buffer]]
#: What a receive returns: owned bytes (``copy=True``) or an arena view.
ReceivedPayload = Union[bytes, memoryview]


def as_views(payload: BufferParts) -> List[memoryview]:
    """Normalize a payload (buffer or part sequence) to non-empty byte views."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        payload = (payload,)
    return [memoryview(p).cast("B") for p in payload if len(p)]


def payload_nbytes(payload: BufferParts) -> int:
    """Total byte length of a payload in either form."""
    if isinstance(payload, memoryview):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return sum(payload_nbytes(p) for p in payload)


def chunk_views(views: Sequence[memoryview], chunk: int):
    """Regroup ``views`` into gather lists of at most ``chunk`` bytes each.

    Slices across part boundaries without copying; every yielded list but
    the last totals exactly ``chunk`` bytes.  Shared by the API's chunked
    framing and the socket transport's paced writes.
    """
    cur: List[memoryview] = []
    cur_len = 0
    for v in views:
        pos = 0
        while pos < len(v):
            take = min(chunk - cur_len, len(v) - pos)
            cur.append(v[pos : pos + take])
            cur_len += take
            pos += take
            if cur_len == chunk:
                yield cur
                cur, cur_len = [], 0
    if cur:
        yield cur


class CommError(RuntimeError):
    """Raised on protocol misuse (bad ranks, reserved tags, dead peers)."""


class MulticastMode(enum.Enum):
    """How ``bcast`` moves bytes.

    LINEAR: root unicasts to each member in turn — the naive application-
        layer multicast; wall time at the root scales with group size.
    TREE: binomial tree as in Open MPI's ``MPI_Bcast`` — wall time scales
        with ``log2(group size)`` rounds, the behaviour the paper observes.
    """

    LINEAR = "linear"
    TREE = "tree"


# ---------------------------------------------------------------------------
# Requests — waitable handles for non-blocking operations.
# ---------------------------------------------------------------------------


class Request(ABC):
    """Handle for an in-flight non-blocking operation.

    ``wait`` blocks until completion and returns the operation's payload:
    the received bytes (or zero-copy arena view, when posted with
    ``copy=False``) for ``irecv``, the broadcast payload for ``ibcast``
    (at every member, matching ``bcast``'s return contract), and ``None``
    for ``isend``.  ``test`` polls without blocking and reports
    completion.  Errors raised by the underlying transfer re-raise on
    ``wait`` (and on the ``test`` that observes them).  ``wait(timeout)``
    bounds the wait (``None`` = the backend's configured receive
    timeout); expiry raises :class:`CommError`.
    """

    @abstractmethod
    def wait(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Block until the operation completes; return its payload."""

    @abstractmethod
    def test(self) -> bool:
        """Non-blocking completion poll; True once ``wait`` would not block."""


def wait_all(
    requests: Sequence[Request], timeout: Optional[float] = None
) -> List[Optional[bytes]]:
    """Complete every request (``MPI_Waitall``); returns their payloads.

    ``timeout`` is one overall deadline for the whole batch, not a
    per-request allowance.
    """
    if timeout is None:
        return [req.wait() for req in requests]
    deadline = time.monotonic() + timeout
    return [
        req.wait(max(0.0, deadline - time.monotonic())) for req in requests
    ]


class _CompletedRequest(Request):
    """A request that finished (or failed) at creation time."""

    __slots__ = ("_value",)

    def __init__(self, value: Optional[bytes]) -> None:
        self._value = value

    def wait(self, timeout: Optional[float] = None) -> Optional[bytes]:
        return self._value

    def test(self) -> bool:
        return True


class _FutureRequest(Request):
    """A request completed by a background worker (async send / tree relay).

    ``default_timeout`` bounds ``wait(None)``: send futures get the
    backend's receive timeout (a wedged peer surfaces as an error instead
    of an unbounded hang), while tree-relay futures pass ``None`` — their
    packet may legitimately be a long while away, and peer failure
    completes them with an error through the relay closure instead.
    """

    def __init__(self, default_timeout: Optional[float] = None) -> None:
        self._event = threading.Event()
        self._value: Optional[bytes] = None
        self._error: Optional[BaseException] = None
        self._default_timeout = default_timeout

    def _set(self, value: Optional[bytes]) -> None:
        self._value = value
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if timeout is None:
            timeout = self._default_timeout
        if not self._event.wait(timeout):
            raise CommError("request wait timed out")
        if self._error is not None:
            raise CommError(f"async operation failed: {self._error}") from self._error
        return self._value

    def test(self) -> bool:
        if not self._event.is_set():
            return False
        if self._error is not None:
            raise CommError(f"async operation failed: {self._error}") from self._error
        return True


class _RecvRequest(Request):
    """Lazily-completing receive: consumes frames as they become available.

    No thread is involved: ``test`` pops whatever frames have already
    arrived via the backend's non-blocking ``_poll_raw``; ``wait`` blocks
    via ``_recv_raw`` for the remainder.  Must only be driven from the
    owning program's thread (like an MPI request).
    """

    def __init__(
        self, comm: "Comm", src: int, tag: int, copy: bool = True
    ) -> None:
        self._comm = comm
        self._src = src
        self._tag = tag
        self._copy = copy
        self._expected: Optional[int] = None  # chunk frames still to come
        self._parts: List[Buffer] = []
        self._value: Optional[ReceivedPayload] = None
        self._done = False

    def _consume(self, frame: Buffer) -> None:
        if self._expected is None:
            (nchunks,) = _FRAME_PREFIX.unpack_from(frame)
            if nchunks == 0:
                body = memoryview(frame)[_FRAME_PREFIX.size:]
                if self._copy:
                    copytrack.count_copy(len(body), "api.recv.materialize")
                    self._value = bytes(body)
                else:
                    self._value = body
                self._done = True
                return
            self._expected = nchunks
            return
        self._parts.append(frame)
        self._expected -= 1
        if self._expected == 0:
            total = sum(len(p) for p in self._parts)
            copytrack.count_copy(total, "api.recv.assemble_chunks")
            if self._copy:
                self._value = b"".join(self._parts)
            else:
                arena = bytearray(total)
                view = memoryview(arena)
                pos = 0
                for p in self._parts:
                    view[pos : pos + len(p)] = p
                    pos += len(p)
                self._value = view
            self._parts = []
            self._done = True

    def test(self) -> bool:
        # _poll_raw raises CommError once the source is closed and no
        # buffered frame remains, so polling callers observe peer death.
        while not self._done:
            frame = self._comm._poll_raw(self._src, self._tag)
            if frame is None:
                return False
            self._consume(frame)
        return True

    def wait(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if timeout is None:
            while not self._done:
                self._consume(self._comm._recv_raw(self._src, self._tag))
            return self._value
        deadline = time.monotonic() + timeout
        while not self._done:
            remaining = max(0.0, deadline - time.monotonic())
            self._consume(
                self._comm._recv_raw(self._src, self._tag, timeout=remaining)
            )
        return self._value


class Comm(ABC):
    """Per-node communication endpoint.

    Attributes:
        rank: this node's id in ``range(size)``.
        size: total number of nodes (the paper's ``K``).
        chunk_bytes: maximum raw-frame payload; larger user messages are
            split into chunks transparently.
        record_relays: when True, every physical broadcast hop is logged
            to the traffic log with kind ``"relay"`` in addition to the
            one logical multicast record.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        traffic: Optional[TrafficLog] = None,
        multicast_mode: MulticastMode = MulticastMode.LINEAR,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        record_relays: bool = False,
    ) -> None:
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} out of range(size={size})")
        if chunk_bytes < 1:
            raise CommError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.rank = rank
        self.size = size
        self.traffic = traffic
        self.multicast_mode = multicast_mode
        self.chunk_bytes = chunk_bytes
        self.record_relays = record_relays
        self._stage = "init"
        self._stage_listeners: List[Callable[[str, str], None]] = []
        # Set once the async sender path has been used; from then on
        # blocking sends route through it too, preserving per-channel FIFO
        # with any still-queued closures.
        self._async_dispatch_used = False
        # Session pools shift every job into its own user-tag window.
        self._job_tag_offset = 0
        self._in_session = False
        self._job_seq = 0
        # Driver->worker mid-job control channel (speculation); installed
        # by the pool's control loop, None on one-shot/thread backends.
        self.job_control: Optional[Any] = None

    # -- session jobs -----------------------------------------------------------

    def begin_job(self, job_seq: int, traffic: Optional[TrafficLog]) -> None:
        """Rebind this endpoint to job ``job_seq`` of a session worker pool.

        Long-lived pool endpoints call this between jobs: it installs the
        job's own traffic log (per-job byte isolation), resets the stage to
        ``"init"``, and shifts all user tags into the job's reserved window
        of :data:`JOB_TAG_STRIDE` tags — so a stale frame from an earlier
        job (e.g. one aborted mid-shuffle) can never alias a receive of the
        current one.  All endpoints of a cluster must begin the same job
        sequence number before the job's program runs.
        """
        if job_seq < 0:
            raise CommError(f"job_seq must be >= 0, got {job_seq}")
        self.traffic = traffic
        self._stage = "init"
        self._in_session = True
        self._job_seq = job_seq
        self.job_control = None
        self._job_tag_offset = (job_seq % _JOB_TAG_WINDOWS) * JOB_TAG_STRIDE
        self._begin_job_raw(job_seq)

    def _begin_job_raw(self, job_seq: int) -> None:
        """Backend hook: re-namespace internal protocol state per job."""

    def _user_tag(self, tag: int) -> int:
        """Validate a user tag and shift it into the current job window."""
        self._check_tag(tag)
        if self._in_session and tag >= JOB_TAG_STRIDE:
            # Enforced for every job (including job 0, whose offset is 0):
            # a window-straddling tag would alias a neighbouring job's.
            raise CommError(
                f"tag {tag} outside the session job window "
                f"[0, {JOB_TAG_STRIDE})"
            )
        return tag + self._job_tag_offset

    # -- stage attribution ----------------------------------------------------

    def set_stage(self, name: str) -> None:
        """Attribute subsequent traffic to stage ``name``."""
        previous = self._stage
        self._stage = name
        if previous != name:
            for listener in list(self._stage_listeners):
                listener(previous, name)

    @property
    def stage(self) -> str:
        return self._stage

    def add_stage_listener(
        self, listener: Callable[[str, str], None]
    ) -> None:
        """Register ``listener(previous, current)`` for stage changes.

        Stage-progress hook: fired from :meth:`set_stage` whenever the
        attributed stage actually changes — including entry/exit of the
        nested stage scopes the overlapped engines open mid-loop, so a
        listener observes the real stage interleaving (e.g. ``shuffle``
        -> ``map`` -> ``shuffle`` transitions prove Map ran inside the
        shuffle span).  Listeners run on the worker's own thread; they
        must be cheap and must not raise.  ``begin_job`` resets the
        stage directly, so listeners only see intra-job transitions.
        """
        self._stage_listeners.append(listener)

    def remove_stage_listener(
        self, listener: Callable[[str, str], None]
    ) -> None:
        """Deregister a listener; unknown listeners are ignored."""
        try:
            self._stage_listeners.remove(listener)
        except ValueError:
            pass

    # -- backend primitives ----------------------------------------------------

    @abstractmethod
    def _send_raw(self, dst: int, tag: int, payload: BufferParts) -> None:
        """Deliver one raw frame to ``dst`` under ``tag`` (blocking ok).

        ``payload`` is a buffer or a gather list of buffer parts forming
        one frame; backends must treat the parts as a single atomic frame
        (the multiprocessing backend hands them to vectored ``sendmsg``).

        Must be safe to call from multiple threads for *different* tags on
        the same destination (frames of one tag are never sent from two
        threads at once by this layer).
        """

    @abstractmethod
    def _recv_raw(self, src: int, tag: int, timeout=BACKEND_TIMEOUT) -> Buffer:
        """Block until a raw frame from ``src`` with ``tag`` arrives.

        ``timeout``: seconds to wait, ``None`` for unbounded, or the
        :data:`BACKEND_TIMEOUT` sentinel for the backend's configured
        default.  Expiry raises :class:`CommError`.
        """

    @abstractmethod
    def _barrier_raw(self) -> None:
        """Block until all ``size`` nodes have entered the barrier."""

    def _poll_raw(self, src: int, tag: int) -> Optional[bytes]:
        """Non-blocking: pop a buffered raw frame or return None.

        Must raise :class:`CommError` (after draining buffered frames) if
        the source can never deliver — that is how ``Request.test``
        observes peer death.  Backends that cannot probe may leave the
        default, which degrades ``Request.test`` to always-False
        (``wait`` still works).
        """
        return None

    def _dispatch_send(self, fn: Callable[[], Optional[bytes]]) -> Request:
        """Run a send closure asynchronously; default executes inline.

        Backends whose raw sends can block for long (socket backpressure)
        override this with a sender-thread dispatch.  Closures for one
        destination+tag must execute in dispatch order.
        """
        return _CompletedRequest(fn())

    def _spawn(self, fn: Callable[[], Optional[bytes]]) -> Request:
        """Run ``fn`` on a fresh daemon thread (tree-relay ibcasts)."""
        req = _FutureRequest()

        def runner() -> None:
            try:
                req._set(fn())
            except BaseException as exc:  # noqa: BLE001 - delivered via wait
                req._fail(exc)

        threading.Thread(
            target=runner, daemon=True, name=f"relay-{self.rank}"
        ).start()
        return req

    def _close_async(self) -> None:
        """Stop backend async helpers; called once the node program ends."""

    # -- chunked framing --------------------------------------------------------

    def _send_framed(self, dst: int, tag: int, payload: BufferParts) -> None:
        """Send one logical payload as a header frame plus chunk frames.

        The framing prefix travels as an extra gather-list part and chunks
        are memoryview slices, so the payload bytes are never copied here.
        """
        views = as_views(payload)
        total = sum(len(v) for v in views)
        if total <= self.chunk_bytes:
            self._send_raw(dst, tag, [_PREFIX_INLINE, *views])
            return
        chunk = self.chunk_bytes
        nchunks = (total + chunk - 1) // chunk
        self._send_raw(dst, tag, [_FRAME_PREFIX.pack(nchunks)])
        for piece in chunk_views(views, chunk):
            self._send_raw(dst, tag, piece)

    def _recv_framed(
        self, src: int, tag: int, timeout=BACKEND_TIMEOUT, copy: bool = True
    ) -> ReceivedPayload:
        """Receive one logical payload (header frame plus chunk frames).

        ``copy=False`` returns a memoryview into the backend's receive
        arena (zero-copy for unchunked payloads; chunked payloads are
        assembled once into a fresh arena).  ``copy=True`` returns owned
        ``bytes`` (one copy).
        """
        head = self._recv_raw(src, tag, timeout=timeout)
        (nchunks,) = _FRAME_PREFIX.unpack_from(head)
        if nchunks == 0:
            body = memoryview(head)[_FRAME_PREFIX.size:]
            if not copy:
                return body
            copytrack.count_copy(len(body), "api.recv.materialize")
            return bytes(body)
        chunks = [
            self._recv_raw(src, tag, timeout=timeout) for _ in range(nchunks)
        ]
        total = sum(len(c) for c in chunks)
        copytrack.count_copy(total, "api.recv.assemble_chunks")
        if copy:
            return b"".join(chunks)
        arena = bytearray(total)
        view = memoryview(arena)
        pos = 0
        for c in chunks:
            view[pos : pos + len(c)] = c
            pos += len(c)
        return view

    # -- public API -------------------------------------------------------------

    def send(self, dst: int, tag: int, payload: BufferParts) -> None:
        """Blocking tagged unicast (logged as one unicast transfer).

        ``payload`` may be one buffer or a gather list of buffer parts
        (sent as one logical message, zero-copy).

        Runs inline (no sender-thread handoff) until the first non-blocking
        send is posted; after that it rides the async sender so messages on
        one channel can never overtake queued closures.
        """
        self._check_peer(dst)
        tag = self._user_tag(tag)
        faults.comm_op("send", self.rank, dst, self._stage, self._job_seq)
        if self.traffic is not None:
            self.traffic.record(
                self._stage, "unicast", self.rank, (dst,), payload_nbytes(payload)
            )
        if self._async_dispatch_used:
            self._dispatch_send(
                lambda: self._send_framed(dst, tag, payload)
            ).wait()
        else:
            self._send_framed(dst, tag, payload)

    def isend(self, dst: int, tag: int, payload: BufferParts) -> Request:
        """Non-blocking tagged unicast; returns a waitable :class:`Request`.

        ``payload`` may be one buffer or a gather list of parts; the caller
        must not mutate any part until the request completes.  The payload
        is logged (one unicast record) at post time, in the stage active
        when ``isend`` was called.
        """
        self._check_peer(dst)
        tag = self._user_tag(tag)
        if self.traffic is not None:
            self.traffic.record(
                self._stage, "unicast", self.rank, (dst,), payload_nbytes(payload)
            )
        self._async_dispatch_used = True
        return self._dispatch_send(lambda: self._send_framed(dst, tag, payload))

    def recv(self, src: int, tag: int, copy: bool = True) -> ReceivedPayload:
        """Blocking tagged receive from a specific source.

        ``copy=False`` returns a zero-copy ``memoryview`` into the receive
        arena (read-only by contract) instead of owned ``bytes``.
        """
        self._check_peer(src)
        tag = self._user_tag(tag)
        faults.comm_op("recv", self.rank, src, self._stage, self._job_seq)
        return self._recv_framed(src, tag, copy=copy)

    def irecv(self, src: int, tag: int, copy: bool = True) -> Request:
        """Non-blocking tagged receive; ``wait()`` returns the payload.

        ``copy=False`` makes ``wait()`` return a zero-copy arena view,
        with the same read-only contract as :meth:`recv`.
        """
        self._check_peer(src)
        tag = self._user_tag(tag)
        return _RecvRequest(self, src, tag, copy=copy)

    def bcast(
        self,
        members: Sequence[int],
        root: int,
        tag: int,
        payload: Optional[BufferParts] = None,
        copy: bool = True,
    ) -> BufferParts:
        """Multicast within ``members``; every member must call this.

        Args:
            members: group ranks; must contain both ``root`` and ``self.rank``
                and hold no duplicates.  All members must pass the same group
                (in any order) and tag.
            root: the sending rank.
            tag: user tag (also namespaces concurrent broadcasts).
            payload: required at the root (one buffer or a gather list of
                parts), ignored elsewhere.
            copy: receivers only — ``False`` returns a zero-copy arena view
                instead of owned bytes (read-only contract).

        Returns:
            The payload at every member: the root gets its own payload back
            verbatim (parts stay parts); receivers get bytes or a view.
        """
        group = self._bcast_preflight(members, root, tag, payload)
        if len(group) == 1:
            assert payload is not None
            return payload
        inner_tag = _BCAST_NS | self._user_tag(tag)
        if self.multicast_mode is MulticastMode.TREE:
            return self._bcast_tree(
                group, root, inner_tag, payload, self._stage, copy=copy
            )
        return self._bcast_linear(
            group, root, inner_tag, payload, self._stage, copy=copy
        )

    def ibcast(
        self,
        members: Sequence[int],
        root: int,
        tag: int,
        payload: Optional[BufferParts] = None,
        copy: bool = True,
    ) -> Request:
        """Non-blocking multicast; ``wait()`` returns the payload everywhere.

        The root's sends run on the backend's async sender.  A LINEAR (or
        TREE-leaf) receiver gets a threadless lazy request; a TREE interior
        receiver relays to its children from a background thread as soon as
        its copy arrives.  At most one in-flight broadcast may use a given
        ``(group, tag)`` pair at a time (same as ``bcast``).

        Scaling note: each in-flight TREE interior receive costs one
        (mostly idle) relay thread until its packet arrives, so a program
        that posts an entire shuffle's receives up front holds up to
        ``~C(K-1, r) / (r+1)`` relay threads per node.  Fine at this
        repo's scales (tens of threads at K <= 16); a shared relay
        dispatcher is the upgrade path if group counts grow far beyond
        that.
        """
        group = self._bcast_preflight(members, root, tag, payload)
        if len(group) == 1:
            return _CompletedRequest(payload)
        inner_tag = _BCAST_NS | self._user_tag(tag)
        stage = self._stage
        if self.rank == root:
            self._async_dispatch_used = True
            if self.multicast_mode is MulticastMode.TREE:
                return self._dispatch_send(
                    lambda: self._bcast_tree(group, root, inner_tag, payload, stage)
                )
            return self._dispatch_send(
                lambda: self._bcast_linear(group, root, inner_tag, payload, stage)
            )
        if self.multicast_mode is MulticastMode.LINEAR:
            return _RecvRequest(self, root, inner_tag, copy=copy)
        parent, children = self._tree_links(group, root, self.rank)
        assert parent is not None
        if not children:
            return _RecvRequest(self, parent, inner_tag, copy=copy)
        # The relay may legitimately sit idle for many rounds before its
        # packet is due, so its receive is exempt from the per-receive
        # timeout (peer failure still unblocks it via channel closure).
        return self._spawn(
            lambda: self._bcast_tree(
                group, root, inner_tag, None, stage, recv_timeout=None,
                copy=copy,
            )
        )

    def barrier(self) -> None:
        """Block until every rank has reached the barrier."""
        self._barrier_raw()

    # -- broadcast algorithms -----------------------------------------------------

    def _bcast_preflight(
        self,
        members: Sequence[int],
        root: int,
        tag: int,
        payload: Optional[BufferParts],
    ) -> Tuple[int, ...]:
        """Validate a broadcast call; log the logical multicast at the root."""
        group = tuple(sorted(members))
        if len(set(group)) != len(group):
            raise CommError(f"duplicate members in bcast group {members!r}")
        if root not in group:
            raise CommError(f"root {root} not in group {group}")
        if self.rank not in group:
            raise CommError(f"rank {self.rank} called bcast for group {group}")
        self._check_tag(tag)
        if self.rank == root:
            if payload is None:
                raise CommError("bcast root must provide a payload")
            if self.traffic is not None:
                dsts = tuple(m for m in group if m != root)
                if dsts:
                    self.traffic.record(
                        self._stage, "multicast", root, dsts,
                        payload_nbytes(payload),
                    )
        return group

    def _record_hop(self, stage: str, dst: int, nbytes: int) -> None:
        """Log one physical broadcast hop (kind ``"relay"``) if enabled."""
        if self.record_relays and self.traffic is not None:
            self.traffic.record(stage, "relay", self.rank, (dst,), nbytes)

    def _bcast_linear(
        self,
        group: Tuple[int, ...],
        root: int,
        tag: int,
        payload: Optional[BufferParts],
        stage: str,
        copy: bool = True,
    ) -> BufferParts:
        if self.rank == root:
            assert payload is not None
            nbytes = payload_nbytes(payload)
            for m in group:
                if m != root:
                    self._send_framed(m, tag, payload)
                    self._record_hop(stage, m, nbytes)
            return payload
        return self._recv_framed(root, tag, copy=copy)

    @staticmethod
    def _tree_links(
        group: Tuple[int, ...], root: int, rank: int
    ) -> Tuple[Optional[int], List[int]]:
        """``rank``'s parent and children in the binomial broadcast tree.

        Members are renumbered relative to the root; in round ``i`` every
        current holder forwards to the member ``2^i`` positions ahead.
        Scanning masks upward, the first set bit of the relative index
        names the round in which a member is reached; its parent is the
        index with that bit cleared, and its children are the indices
        reached by setting each lower bit (in descending round order).
        The root (relative index 0) has no parent.
        """
        g = len(group)
        root_idx = group.index(root)
        rel = (group.index(rank) - root_idx) % g
        parent: Optional[int] = None
        mask = 1
        while mask < g:
            if rel & mask:
                parent = group[((rel - mask) + root_idx) % g]
                break
            mask <<= 1
        mask >>= 1
        children: List[int] = []
        while mask > 0:
            if rel + mask < g:
                children.append(group[(rel + mask + root_idx) % g])
            mask >>= 1
        return parent, children

    def _bcast_tree(
        self,
        group: Tuple[int, ...],
        root: int,
        tag: int,
        payload: Optional[BufferParts],
        stage: str,
        recv_timeout=BACKEND_TIMEOUT,
        copy: bool = True,
    ) -> BufferParts:
        """Binomial-tree broadcast (MPICH/Open MPI algorithm).

        Every non-root receives exactly once, so wire bytes equal the linear
        mode; only the critical path shortens to ``ceil(log2(g))`` rounds.
        Interior nodes forward their received arena view to children
        without copying, regardless of ``copy``.
        """
        parent, children = self._tree_links(group, root, self.rank)
        data = payload
        if parent is not None:
            data = self._recv_framed(
                parent, tag, timeout=recv_timeout, copy=copy and not children
            )
        assert data is not None
        nbytes = payload_nbytes(data)
        for child in children:
            self._send_framed(child, tag, data)
            self._record_hop(stage, child, nbytes)
        if parent is not None and copy and children:
            copytrack.count_copy(nbytes, "api.recv.materialize")
            return bytes(data) if not isinstance(data, bytes) else data
        return data

    # -- checks ----------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommError(f"peer {peer} out of range(size={self.size})")
        if peer == self.rank:
            raise CommError("self-send/recv is not allowed")

    @staticmethod
    def _check_tag(tag: int) -> None:
        if not 0 <= tag < RESERVED_TAG_BASE:
            raise CommError(
                f"tag {tag} outside user range [0, {RESERVED_TAG_BASE})"
            )


def barrier_tag(round_idx: int) -> int:
    """Internal tag for dissemination-barrier round ``round_idx``."""
    return _BARRIER_NS + round_idx
