"""Socket framing for the multiprocessing backend.

Each point-to-point channel is an ``AF_UNIX`` stream socket (created with
``socket.socketpair`` in the parent and inherited over ``fork``).  Messages
are length-prefixed frames::

    <tag: uint64 LE> <length: uint64 LE> <payload: length bytes>

Large payloads are written in chunks so a sender-side
:class:`~repro.runtime.ratelimit.TokenBucket` can pace them, reproducing the
paper's 100 Mbps ``tc`` throttling in userspace.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional, Tuple

from repro.runtime.ratelimit import TokenBucket

FRAME_HEADER = struct.Struct("<QQ")
#: Write granularity; also the pacing quantum for rate-limited sends.
CHUNK_BYTES = 64 * 1024


class TransportError(ConnectionError):
    """Raised when a peer closes mid-frame or a read times out."""


def send_frame(
    sock: socket.socket,
    tag: int,
    payload: bytes,
    pacer: Optional[TokenBucket] = None,
) -> None:
    """Write one frame, pacing chunks through ``pacer`` if given.

    The header is paced together with the first chunk; pacing charges
    payload + header bytes so measured goodput matches the configured rate.
    """
    header = FRAME_HEADER.pack(tag, len(payload))
    if pacer is None:
        sock.sendall(header)
        # An empty frame is complete once its header is out; skipping the
        # zero-byte sendall matters for correctness, not just speed: the
        # receiver may legitimately consume the frame and exit between the
        # two calls, and a trailing no-op send would then raise EPIPE.
        if payload:
            sock.sendall(payload)
        return
    pacer.consume(len(header))
    sock.sendall(header)
    view = memoryview(payload)
    for start in range(0, len(view), CHUNK_BYTES):
        chunk = view[start : start + CHUNK_BYTES]
        pacer.consume(len(chunk))
        sock.sendall(chunk)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one complete frame; raises :class:`TransportError` on EOF."""
    header = recv_exact(sock, FRAME_HEADER.size)
    tag, length = FRAME_HEADER.unpack(header)
    payload = recv_exact(sock, length)
    return tag, payload


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`TransportError`."""
    if n == 0:
        return b""
    parts = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:  # pragma: no cover - timing dependent
            raise TransportError(f"socket read timed out ({n} byte frame)") from exc
        if not chunk:
            raise TransportError(
                f"peer closed connection with {remaining}/{n} bytes pending"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)
