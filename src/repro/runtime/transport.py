"""Socket framing for the multiprocessing backend.

Each point-to-point channel is an ``AF_UNIX`` stream socket (created with
``socket.socketpair`` in the parent and inherited over ``fork``).  Messages
are length-prefixed frames::

    <tag: uint64 LE> <length: uint64 LE> <payload: length bytes>

The data plane is zero-copy in both directions:

* **sends are vectored** — :func:`send_frame` accepts either one buffer or
  a gather list of buffer parts and hands ``[header, *parts]`` to
  ``sock.sendmsg`` in one call, so the header/payload concatenation and
  any caller-side part join never happen;
* **receives land in one arena** — :func:`recv_frame` reads the length,
  allocates a single ``bytearray``, and fills it with ``recv_into`` on
  memoryview slices; no parts list, no join.

Large paced payloads are still written in chunks so a sender-side
:class:`~repro.runtime.ratelimit.TokenBucket` can pace them, reproducing
the paper's 100 Mbps ``tc`` throttling in userspace.
"""

from __future__ import annotations

import socket
import struct
from typing import List, Optional, Tuple

from repro.runtime.api import BufferParts, as_views, chunk_views
from repro.runtime.ratelimit import TokenBucket

FRAME_HEADER = struct.Struct("<QQ")
#: Write granularity; also the pacing quantum for rate-limited sends.
CHUNK_BYTES = 64 * 1024
#: Max iovec entries per ``sendmsg`` call (conservative vs POSIX IOV_MAX).
_IOV_MAX = 512


class TransportError(ConnectionError):
    """Raised when a peer closes mid-frame or a read times out."""


def send_frame(
    sock: socket.socket,
    tag: int,
    payload: BufferParts,
    pacer: Optional[TokenBucket] = None,
) -> None:
    """Write one frame; ``payload`` may be a buffer or a gather list.

    Unpaced, the header and every payload part go out through a single
    vectored ``sendmsg`` (no concatenation, no per-part ``sendall``).  A
    frame is one atomic unit on the stream either way: partial vectored
    writes are continued until the full frame is out.

    Paced, the header is charged together with the first chunk; pacing
    charges payload + header bytes so measured goodput matches the
    configured rate.
    """
    views = as_views(payload)
    total = sum(len(v) for v in views)
    header = FRAME_HEADER.pack(tag, total)
    if pacer is None:
        # An empty frame is complete once its header is out; sending it as
        # one sendmsg (not header-then-payload) also matters for
        # correctness: the receiver may legitimately consume the frame and
        # exit between two calls, and a trailing no-op send would then
        # raise EPIPE.
        _sendmsg_all(sock, [memoryview(header), *views])
        return
    pacer.consume(len(header))
    sock.sendall(header)
    for chunk in chunk_views(views, CHUNK_BYTES):
        pacer.consume(sum(len(v) for v in chunk))
        _sendmsg_all(sock, chunk)


def _sendmsg_all(sock: socket.socket, views: List[memoryview]) -> None:
    """Vectored ``sendall``: push every view out, resuming partial writes."""
    pending = [v for v in views if len(v)]
    while pending:
        try:
            n = sock.sendmsg(pending[:_IOV_MAX])
        except socket.timeout as exc:  # pragma: no cover - timing dependent
            raise TransportError("socket write timed out") from exc
        while pending and n >= len(pending[0]):
            n -= len(pending[0])
            pending.pop(0)
        if n:
            pending[0] = pending[0][n:]


def recv_frame(sock: socket.socket) -> Tuple[int, bytearray]:
    """Read one complete frame; raises :class:`TransportError` on EOF.

    The payload lands in a single freshly-allocated ``bytearray`` arena
    via ``recv_into`` — downstream consumers slice memoryviews off it
    instead of copying.
    """
    header = recv_exact(sock, FRAME_HEADER.size)
    tag, length = FRAME_HEADER.unpack(header)
    payload = bytearray(length)
    if length:
        recv_exact_into(sock, memoryview(payload))
    return tag, payload


def recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from ``sock`` or raise :class:`TransportError`."""
    total = len(view)
    got = 0
    while got < total:
        try:
            n = sock.recv_into(view[got:])
        except socket.timeout as exc:  # pragma: no cover - timing dependent
            raise TransportError(
                f"socket read timed out ({total} byte frame)"
            ) from exc
        if n == 0:
            raise TransportError(
                f"peer closed connection with {total - got}/{total} bytes pending"
            )
        got += n


def recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes into one preallocated arena."""
    buf = bytearray(n)
    if n:
        recv_exact_into(sock, memoryview(buf))
    return buf
