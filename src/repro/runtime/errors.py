"""Typed runtime failures for the live backends.

The live runtime used to surface every failure mode — a crashed worker,
a wedged socket, a driver-side timeout — as a bare ``RuntimeError`` (or
an EOF cascade that eventually became one).  Fault-tolerant execution
needs to *distinguish* them: a :class:`WorkerFailure` is retryable (the
job's inputs are deterministic descriptors, so a re-run is
byte-identical), while a program bug raised inside a stage must fail the
handle immediately and must never be retried.

Both classes extend :class:`~repro.runtime.api.CommError` (itself a
``RuntimeError``), so every existing ``except CommError`` /
``except RuntimeError`` site keeps working.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.runtime.api import CommError


class WorkerFailure(CommError):
    """A worker died or went silent mid-job: infrastructure, not program.

    Attributes:
        rank: the failed worker's rank (``-1`` when unattributable).
        stage: the last stage the worker was known to be executing.
        cause: human-readable cause (EOF, heartbeat timeout, crash, ...).

    This is the *retryable* failure class: :class:`~repro.session.Session`
    re-submits a job that raised ``WorkerFailure`` (up to ``max_retries``),
    because job specs are deterministic descriptors and a re-run produces
    byte-identical output.
    """

    def __init__(self, rank: int, stage: str, cause: str) -> None:
        super().__init__(
            f"worker {rank} failed in stage {stage!r}: {cause}"
        )
        self.rank = rank
        self.stage = stage
        self.cause = cause


class RuntimeTimeoutError(CommError):
    """A bounded runtime wait expired (socket op or whole-job deadline).

    Unlike :class:`WorkerFailure` this is **not** auto-retried: a job
    that outruns its deadline would most likely outrun it again.

    Attributes:
        peer: the remote rank being waited on, or ``None``.
        stage: the stage active when the wait expired, or ``None``.
        seconds: the timeout that expired, or ``None`` if unknown.
    """

    def __init__(
        self,
        message: str,
        peer: Optional[int] = None,
        stage: Optional[str] = None,
        seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.peer = peer
        self.stage = stage
        self.seconds = seconds


def job_failure(
    backend: str,
    program_errors: Sequence[str],
    infra_failures: Sequence[Tuple[int, str, str]],
) -> RuntimeError:
    """Classify a pool job's collected failures into one exception.

    Shared by the process and TCP pool drivers.  Any *program* error (a
    worker's job raised) dominates: the job failed on its own merits and
    must not be retried, so the result is a plain :class:`RuntimeError` —
    even though the crash's EOF cascade usually adds comm failures from
    every surviving worker.  Pure infrastructure failures produce a
    :class:`WorkerFailure` attributed to the first failing rank (the
    retryable class).  Every collected failure line is kept in the
    message either way.
    """
    lines: List[str] = list(program_errors)
    lines += [
        f"worker {rank} failed in stage {stage!r}: {cause}"
        for rank, stage, cause in infra_failures
    ]
    message = f"{backend} job failed:\n" + "\n".join(lines)
    if program_errors or not infra_failures:
        return RuntimeError(message)
    rank, stage, cause = infra_failures[0]
    failure = WorkerFailure(rank, stage, cause)
    failure.args = (message,)
    return failure
