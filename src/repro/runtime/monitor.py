"""Driver-side job liveness tracking and speculation policy.

Shared by the process and TCP pool collection loops: both feed worker
heartbeats (``("hb", rank, job_seq, stage)`` frames emitted by
``serve_pool_jobs``) and final results into one :class:`JobMonitor`,
then poll it for two decisions —

* **liveness**: a worker whose last heartbeat is older than
  ``failure_timeout`` is declared dead with a typed
  :class:`~repro.runtime.errors.WorkerFailure` (no more waiting for the
  EOF cascade);
* **speculation**: when the job's :class:`~repro.runtime.program
  .PreparedJob` carries a speculation config, the monitor watches which
  ranks have moved past the watched stage (default ``"map"``) and, once
  at least half have, nominates a backup rank for any straggler that has
  been in the stage for longer than
  ``max(min_wait, wait_factor x median completion time)``.  The pool
  broadcasts the resulting ``("speculate", straggler, backup)``
  directive to every worker; first finisher wins on the worker side.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.runtime.errors import WorkerFailure


class JobMonitor:
    """Per-job liveness + straggler bookkeeping for a pool driver loop."""

    def __init__(
        self,
        size: int,
        failure_timeout: float,
        speculation: Optional[Dict] = None,
        epoch: Optional[int] = None,
    ) -> None:
        now = time.monotonic()
        self.size = size
        self.failure_timeout = failure_timeout
        self.speculation = speculation
        #: Membership epoch the job was planned under (elastic pools).
        #: Feeds sourced via :meth:`heartbeat`/:meth:`result` with a
        #: newer member-incarnation epoch are rejected — a recycled rank
        #: must never refresh the liveness clock of a job dispatched
        #: before its replacement worker joined.
        self.epoch = epoch
        self._start = now
        self._last_heard = [now] * size
        self._stage = ["init"] * size
        self._past_watched = [False] * size
        self._done_at: List[Optional[float]] = [None] * size
        self._finished = [False] * size
        self._spec_assigned: Dict[int, int] = {}  # straggler -> backup
        self._busy_backups: set = set()

    # -- event feeds ---------------------------------------------------------

    def accepts(self, member_epoch: Optional[int]) -> bool:
        """Whether a feed from a member incarnation born at
        ``member_epoch`` belongs to this job (see ``epoch``)."""
        if self.epoch is None or member_epoch is None:
            return True
        return member_epoch <= self.epoch

    def heartbeat(
        self, rank: int, stage: str, member_epoch: Optional[int] = None
    ) -> None:
        if not self.accepts(member_epoch):
            return
        now = time.monotonic()
        self._last_heard[rank] = now
        self._stage[rank] = stage
        if self.speculation is not None and not self._past_watched[rank]:
            watched = self.speculation.get("stage", "map")
            if stage not in ("init", watched):
                self._past_watched[rank] = True
                self._done_at[rank] = now

    def result(
        self, rank: int, member_epoch: Optional[int] = None
    ) -> None:
        """A final ok/error report arrived from ``rank``."""
        if not self.accepts(member_epoch):
            return
        now = time.monotonic()
        self._last_heard[rank] = now
        self._finished[rank] = True
        if not self._past_watched[rank]:
            self._past_watched[rank] = True
            self._done_at[rank] = now

    def stage_of(self, rank: int) -> str:
        return self._stage[rank]

    # -- decisions -----------------------------------------------------------

    def check_liveness(self, pending) -> None:
        """Raise :class:`WorkerFailure` for the stalest silent worker."""
        now = time.monotonic()
        for rank in pending:
            silent = now - self._last_heard[rank]
            if silent > self.failure_timeout:
                raise WorkerFailure(
                    rank,
                    self._stage[rank],
                    f"no heartbeat for {silent:.1f}s "
                    f"(failure_timeout={self.failure_timeout}s)",
                )

    def speculation_directives(self) -> List[Tuple[int, int]]:
        """Newly decided ``(straggler, backup)`` pairs since the last call."""
        if self.speculation is None:
            return []
        done = [r for r in range(self.size) if self._past_watched[r]]
        if len(done) * 2 < self.size:
            return []
        now = time.monotonic()
        durations = sorted(self._done_at[r] - self._start for r in done)
        median = durations[len(durations) // 2]
        threshold = max(
            float(self.speculation.get("min_wait", 0.2)),
            float(self.speculation.get("wait_factor", 1.5)) * median,
        )
        fresh: List[Tuple[int, int]] = []
        for rank in range(self.size):
            if self._past_watched[rank] or rank in self._spec_assigned:
                continue
            if now - self._start <= threshold:
                continue
            backup = next(
                (
                    r
                    for r in done
                    if r != rank and r not in self._busy_backups
                ),
                None,
            )
            if backup is None:
                continue
            self._spec_assigned[rank] = backup
            self._busy_backups.add(backup)
            fresh.append((rank, backup))
        return fresh

    @property
    def speculation_active(self) -> bool:
        """True while a speculative backup might still need launching."""
        return (
            self.speculation is not None
            and not all(self._past_watched)
        )

    def poll_timeout(self, remaining: float) -> float:
        """How long the collection loop may block before checking again."""
        cap = max(0.01, self.failure_timeout / 4.0)
        if self.speculation_active:
            cap = min(cap, 0.02)
        return max(0.0, min(remaining, cap))
