"""Node programs, the cluster-result container, and the pipelined shuffle.

A :class:`NodeProgram` is the unit both sort algorithms are written as: a
class instantiated once per node with a :class:`~repro.runtime.api.Comm`
endpoint, whose :meth:`run` method walks the algorithm's stages.  The same
program runs unmodified on the threaded backend (functional tests, byte
accounting) and the multiprocessing backend (real parallel execution) —
mirroring how the paper's single MPI program runs on any cluster size.

:func:`pipelined_multicast_shuffle` is the shared non-blocking shuffle
engine (the §VI "asynchronous execution" future work made concrete): it
posts every receive up front via ``ibcast``, walks a round schedule posting
sends (encoding each packet lazily, right before its first send), and
decodes every multicast group as soon as its packets arrive — overlapping
the Encode / Shuffle / Decode stages instead of barrier-separating them.
The rounds *order* transmissions (node-disjoint groups are posted
adjacently, which keeps concurrent transfers largely conflict-free) but
are deliberately not synchronized at runtime: there is no inter-round
barrier, so a fast node may run ahead — that asynchrony is the point.
The strictly round-synchronized execution model (a barrier after every
round) lives in the simulator (``schedule="rounds"``) and in
:meth:`~repro.sim.costmodel.EC2CostModel.parallel_multicast_shuffle_time`,
which serve as its idealized upper- and lower-envelope predictions.

Stage attribution under overlap: encode and decode work performed inside
the shuffle loop is still charged to the ``encode`` / ``decode`` stages
(compute attribution), and the ``shuffle`` stage is charged the *remaining*
span — communication plus waiting.  The per-stage numbers therefore stay
exclusive (they sum to wall-clock time, like the serial tables), while the
engine additionally reports the full overlapped shuffle span so the
pipelining gain stays visible (``span`` = exclusive shuffle time plus the
encode/decode work performed inside the loop).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.api import BufferParts, Comm, Request, wait_all
from repro.runtime.traffic import TrafficLog
from repro.testing import faults
from repro.utils.timer import StageTimes, Stopwatch


class NodeProgram(ABC):
    """Base class for per-node distributed programs.

    Subclasses implement :meth:`run`, using ``self.comm`` for communication
    and ``self.stopwatch`` (via ``self.stage(name)``) for per-stage timing.
    """

    #: Ordered stage names, used to merge breakdowns; subclasses override.
    STAGES: List[str] = []

    def __init__(self, comm: Comm) -> None:
        self.comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self.stopwatch = Stopwatch()
        # Injected-slowdown pacers for the currently open stage scopes
        # (see repro.testing.faults); empty unless a fault plan matched.
        self._fault_pacers: List[faults.Pacer] = []

    def stage(self, name: str) -> "_StageScope":
        """Enter stage ``name``: times it and attributes traffic to it.

        Scopes nest: on exit the previous traffic-attribution stage is
        restored, so a pipelined engine can charge a slice of work inside
        one stage's span to another stage (overlapped execution).
        """
        return _StageScope(self, name)

    def fault_checkpoint(
        self, poll: Optional[Callable[[], bool]] = None
    ) -> bool:
        """Apply any injected stage slowdown at a work-window boundary.

        Programs with windowed inner loops (e.g. the speculative map) call
        this per window so an injected ``stage.slow`` fault stretches the
        stage *incrementally* — letting a straggler be observed (and
        preempted) mid-stage rather than sleeping the whole delay at once.
        No-op unless a fault plan installed a pacer for an open stage.

        ``poll``: optional abandon-check; the injected sleep runs in
        short slices and the method returns ``True`` (dropping whatever
        delay remains) as soon as the check fires — so a preemptible
        program can be preempted mid-slowdown too.
        """
        for pacer in self._fault_pacers:
            if pacer.checkpoint(poll):
                return True
        return False

    @abstractmethod
    def run(self) -> Any:
        """Execute the node's share of the computation; return its result."""


class _StageScope:
    """Times a stage (via the stopwatch) and restores the previous traffic
    stage on exit."""

    __slots__ = ("_program", "_name", "_prev", "_timer", "_pacer")

    def __init__(self, program: NodeProgram, name: str) -> None:
        self._program = program
        self._name = name
        self._prev = ""
        self._timer = None
        self._pacer = None

    def __enter__(self) -> "_StageScope":
        comm = self._program.comm
        self._prev = comm.stage
        comm.set_stage(self._name)
        self._timer = self._program.stopwatch.stage(self._name).__enter__()
        # Stage-entry fault point: crash/delay fire here (inside the timer,
        # so injected latency is attributed to this stage); a slowdown
        # installs a pacer driven by fault_checkpoint() and stage exit.
        self._pacer = faults.stage_enter(
            comm.rank, self._name, getattr(comm, "_job_seq", 0)
        )
        if self._pacer is not None:
            self._program._fault_pacers.append(self._pacer)
        return self

    def __exit__(self, *exc) -> None:
        if self._pacer is not None:
            self._program._fault_pacers.remove(self._pacer)
            if exc[0] is None:
                self._pacer.checkpoint()
        self._timer.__exit__(*exc)
        self._program.comm.set_stage(self._prev)

    @property
    def elapsed(self) -> float:
        """Full span of the scope (valid after exit)."""
        return self._timer.elapsed

    @property
    def exclusive(self) -> float:
        """Span minus nested scopes — what the stage was charged."""
        return self._timer.exclusive


#: A factory building the program for one node given its Comm endpoint.
ProgramFactory = Callable[[Comm], NodeProgram]


class JobControl:
    """Worker-side mailbox for mid-job driver control messages.

    The pool control loop installs one per job as ``comm.job_control``;
    the worker's control-channel reader thread delivers driver payloads
    into it while the program runs.  Two messages exist today: the
    speculation directive ``("speculate", straggler, backup)`` (run a
    backup copy of ``straggler``'s map shard on rank ``backup``) and the
    abort directive ``("abort", reason)`` — the service coordinator's
    way of unblocking the surviving members of a subset job it has
    already failed (their receives poll :meth:`abort_reason` and bail
    out instead of waiting the full receive timeout).

    Programs poll the accessors between work windows — all methods are
    lock-protected and non-blocking.  One-shot runs and the thread
    backend have no control channel (``comm.job_control is None``) and
    programs must degrade to plain execution.
    """

    def __init__(self, job_seq: int) -> None:
        self.job_seq = job_seq
        self._lock = threading.Lock()
        self._speculations: List[Tuple[int, int]] = []
        self._abort_reason: Optional[str] = None

    def deliver(self, payload: Any) -> None:
        """Called from the control reader thread with one driver message."""
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == "speculate"
        ):
            with self._lock:
                self._speculations.append((int(payload[1]), int(payload[2])))
        elif (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "abort"
        ):
            with self._lock:
                if self._abort_reason is None:
                    self._abort_reason = str(payload[1])

    def abort_reason(self) -> Optional[str]:
        """Why the coordinator aborted this job, or ``None`` while live."""
        with self._lock:
            return self._abort_reason

    def backup_for(self, rank: int) -> Optional[int]:
        """The rank running a backup of ``rank``'s map shard, if any."""
        with self._lock:
            for straggler, backup in self._speculations:
                if straggler == rank:
                    return backup
        return None

    def backup_duty(self, rank: int) -> Optional[int]:
        """The straggler shard ``rank`` was asked to back up, if any."""
        with self._lock:
            for straggler, backup in self._speculations:
                if backup == rank:
                    return straggler
        return None


@dataclass
class PreparedJob:
    """One job compiled for a session worker pool.

    The coordinator-side half of a :class:`~repro.session.JobSpec`: the
    driver does all global preparation (partitioner, placement) once, then
    the pool ships ``builder`` + ``payloads[rank]`` to each worker.

    Attributes:
        builder: ``(comm, payload) -> NodeProgram`` constructing rank's
            program.  Must be a *module-level* callable — the process pool
            pickles it by reference to workers forked before the job
            existed (closures would not survive the pipe).
        payloads: one picklable per-rank payload, ``len(payloads) == K``.
        finalize: coordinator-side mapping from the pool's
            :class:`ClusterResult` to the driver-facing result object
            (e.g. a ``SortRun``); may be a closure.
        speculation: when set, the pool's driver loop watches per-stage
            heartbeats and may launch a backup copy of a straggling
            shard; a dict like ``{"stage": "map", "wait_factor": 1.5,
            "min_wait": 0.2}``.  ``None`` disables speculation.
    """

    builder: Callable[[Comm, Any], NodeProgram]
    payloads: List[Any]
    finalize: Callable[["ClusterResult"], Any]
    speculation: Optional[Dict[str, Any]] = None

    def check_size(self, size: int) -> None:
        """Raise :class:`ValueError` unless compiled for ``size`` ranks."""
        if len(self.payloads) != size:
            raise ValueError(
                f"prepared job has {len(self.payloads)} payloads "
                f"for a size-{size} pool"
            )


def execute_multicast_shuffle(
    program: NodeProgram,
    groups: Sequence[Sequence[int]],
    my_groups: Sequence[int],
    schedule: str,
    turns: Sequence[Tuple[int, int]],
    rounds: Optional[Sequence[Sequence[Tuple[int, int]]]],
    tag_base: int,
    encode: Callable[[int], BufferParts],
    recover: Callable[[int, Dict[int, bytes]], Any],
) -> Tuple[Dict[int, Any], Dict[str, float]]:
    """Run the Encode / Shuffle / Decode block under either schedule.

    The one place both coded programs (CodedTeraSort, Coded MapReduce)
    share their schedule plumbing: ``"serial"`` encodes every packet up
    front, walks :func:`serial_multicast_shuffle`, then decodes; while
    ``"parallel"`` hands the same ``encode`` / ``recover`` callbacks to
    :func:`pipelined_multicast_shuffle` (which overlaps the three stages)
    and records the overlapped span as the ``shuffle_span`` pseudo-stage.

    Args:
        schedule: ``"serial"`` or ``"parallel"`` (validated by callers).
        turns: the serial Fig. 9(b) turn list (``CodingPlan.schedule``).
        rounds: the parallel round schedule; required iff ``schedule ==
            "parallel"``.
        encode / recover: packet producer / group consumer, charged to the
            ``encode`` / ``decode`` stages by both paths.  ``encode`` may
            return one buffer or a gather list of buffer parts (sent
            zero-copy); ``recover`` receives raw packets as zero-copy
            arena views and must not retain them past the call.

    Returns:
        ``(decoded, telemetry)``: ``group_idx -> recover(...)`` result for
        every group of this rank, plus the pipelined engine's span
        telemetry (empty dict for the serial path).
    """
    decoded: Dict[int, Any] = {}
    if schedule == "serial":
        with program.stage("encode"):
            packets_out = {gidx: encode(gidx) for gidx in my_groups}
        with program.stage("shuffle"):
            received = serial_multicast_shuffle(
                program, groups, my_groups, turns, tag_base, packets_out
            )
        with program.stage("decode"):
            for gidx in my_groups:
                decoded[gidx] = recover(gidx, received[gidx])
        return decoded, {}
    assert rounds is not None

    def consume(gidx: int, payloads: Dict[int, bytes]) -> None:
        decoded[gidx] = recover(gidx, payloads)

    telemetry = pipelined_multicast_shuffle(
        program, groups, my_groups, rounds, tag_base, encode, consume
    )
    # Pseudo-stage (not in STAGES): carries the overlapped span to the
    # driver without touching the merged stage table.
    program.stopwatch.add("shuffle_span", telemetry["span"])
    return decoded, telemetry


def serial_multicast_shuffle(
    program: NodeProgram,
    groups: Sequence[Sequence[int]],
    my_groups: Sequence[int],
    schedule: Sequence[Tuple[int, int]],
    tag_base: int,
    packets_out: Dict[int, bytes],
) -> Dict[int, Dict[int, bytes]]:
    """Run the paper's serial multicast shuffle (Fig. 9(b)).

    One ``(group, sender)`` turn at a time: the cluster barrier after each
    turn hands the fabric from turn to turn, so no two multicasts ever
    overlap — the serialized regime whose wall-clock the paper's tables
    report.  Callers wrap this in their ``shuffle`` stage.

    Returns:
        ``group_idx -> {sender: raw packet}`` for every inbound packet.
    """
    rank = program.rank
    received: Dict[int, Dict[int, bytes]] = {g: {} for g in my_groups}
    for gidx, sender in schedule:
        group = groups[gidx]
        if rank in group:
            tag = tag_base + gidx
            if sender == rank:
                program.comm.bcast(group, rank, tag, packets_out[gidx])
            else:
                # copy=False: the raw packet stays a view into the receive
                # arena; decoding reads it without ever materializing bytes.
                received[gidx][sender] = program.comm.bcast(
                    group, sender, tag, copy=False
                )
        program.comm.barrier()
    return received


def pipelined_multicast_shuffle(
    program: NodeProgram,
    groups: Sequence[Sequence[int]],
    my_groups: Sequence[int],
    rounds: Sequence[Sequence[Tuple[int, int]]],
    tag_base: int,
    encode: Callable[[int], BufferParts],
    decode: Callable[[int, Dict[int, bytes]], None],
) -> Dict[str, float]:
    """Run the multicast shuffle as a non-blocking pipeline.

    Args:
        program: the calling node program (supplies comm + stopwatch).
        groups: all multicast groups (``CodingPlan.groups``).
        my_groups: group indices this rank belongs to.
        rounds: the transmission schedule as rounds of ``(group_idx,
            sender)`` turns (``CodingPlan.rounds_for(...)``); each turn must
            appear exactly once across all rounds.  Rounds fix the posting
            order only — no barrier separates them at runtime.
        tag_base: user tag base; each ``(group, sender)`` turn gets the
            distinct tag ``tag_base + group_idx * size + sender`` (all
            turns are in flight concurrently, and concurrent broadcasts
            must not share a ``(group, tag)`` pair).
        encode: ``group_idx -> wire payload`` for packets this rank sends;
            invoked lazily, right before the packet's send is posted, and
            charged to the ``encode`` stage.
        decode: ``(group_idx, {sender: payload})`` consumer; invoked as
            soon as all of a group's packets have arrived (eagerly between
            rounds, deterministically ordered during the final drain) and
            charged to the ``decode`` stage.

    Returns:
        Span telemetry: ``{"span": full shuffle-loop wall seconds,
        "encode_overlapped": .., "decode_overlapped": ..}``.  The
        stopwatch's ``shuffle`` entry receives ``span`` minus the nested
        encode/decode work, keeping per-stage times exclusive.
    """
    comm = program.comm
    rank = program.rank
    before = program.stopwatch.times()

    def turn_tag(gidx: int, sender: int) -> int:
        return tag_base + gidx * comm.size + sender

    with program.stage("shuffle") as scope:
        # Post every receive up front (one ibcast per inbound packet).
        recv_reqs: Dict[int, Dict[int, Request]] = {g: {} for g in my_groups}
        for rnd in rounds:
            for gidx, sender in rnd:
                group = groups[gidx]
                if sender == rank or rank not in group:
                    continue
                recv_reqs[gidx][sender] = comm.ibcast(
                    group, sender, turn_tag(gidx, sender), copy=False
                )

        send_reqs: List[Request] = []
        undecoded = set(g for g in my_groups if recv_reqs[g])

        def sweep() -> None:
            """Decode every group whose packets have all arrived."""
            for gidx in sorted(undecoded):
                reqs = recv_reqs[gidx]
                if not all(req.test() for req in reqs.values()):
                    continue
                payloads = {s: req.wait() for s, req in reqs.items()}
                with program.stage("decode"):
                    decode(gidx, payloads)
                undecoded.discard(gidx)

        # Walk the rounds: lazy-encode, post sends, decode what has landed.
        for rnd in rounds:
            for gidx, sender in rnd:
                if sender != rank:
                    continue
                with program.stage("encode"):
                    packet = encode(gidx)
                send_reqs.append(
                    comm.ibcast(
                        groups[gidx], rank, turn_tag(gidx, rank), packet
                    )
                )
            sweep()

        # Drain: complete the stragglers in deterministic group order.
        for gidx in sorted(undecoded):
            payloads = {
                s: req.wait() for s, req in recv_reqs[gidx].items()
            }
            with program.stage("decode"):
                decode(gidx, payloads)
        undecoded.clear()
        wait_all(send_reqs)
    # The shuffle scope's exclusive accounting already subtracted the
    # nested encode/decode work, so the stage table stays exclusive while
    # the scope's full span carries the overlapped telemetry.
    span = scope.elapsed
    times = program.stopwatch.times()
    encode_in_loop = times.get("encode", 0.0) - before.get("encode", 0.0)
    decode_in_loop = times.get("decode", 0.0) - before.get("decode", 0.0)
    return {
        "span": span,
        "encode_overlapped": encode_in_loop,
        "decode_overlapped": decode_in_loop,
    }


def overlapped_multicast_shuffle(
    program: NodeProgram,
    groups: Sequence[Sequence[int]],
    my_groups: Sequence[int],
    rounds: Sequence[Sequence[Tuple[int, int]]],
    tag_base: int,
    encode: Callable[[int], BufferParts],
    decode: Callable[[int, Dict[int, bytes]], None],
    map_step: Callable[[], bool],
    ready: Callable[[int], bool],
) -> Dict[str, float]:
    """Run Map / Encode / Shuffle / Decode as one overlapped event loop.

    The streaming-overlap extension of :func:`pipelined_multicast_shuffle`:
    instead of requiring the Map stage to finish before the first packet is
    posted, the engine interleaves single map steps (one file / window,
    supplied by ``map_step``) with a map-progress-aware round walk.  A
    group's packet is encoded and multicast the moment every file subset
    it draws on has been fully mapped locally — while later files are
    still being hashed — so the multicast transfers ride behind the
    remaining Map (and the Reduce work nested inside ``decode``) instead
    of extending the critical path.

    Args:
        rounds: posting-priority schedule (``CodingPlan.rounds_for``);
            for ``schedule="serial"`` pass the singleton rounds — the
            engine never barriers between rounds, the order only decides
            which ready packet is posted first.
        map_step: performs one unit of map work, returns ``False`` once
            the input is exhausted.  Charged to the ``map`` stage; any
            encode/reduce work it triggers internally should open its own
            nested stage scopes.
        ready: ``group_idx -> True`` once every local file subset the
            group's packets draw on is fully mapped.  Gates both send
            (this rank's packet is a function of those subsets) and
            decode (recovering a segment XORs the local copies of the
            other senders' subsets back out).  Must be monotone and
            all-``True`` after ``map_step`` is exhausted.

    Returns:
        Span telemetry: ``{"span", "map_overlapped", "encode_overlapped",
        "decode_overlapped"}`` — ``span`` covers the entire overlapped
        loop (map included); the ``*_overlapped`` entries are the nested
        stage seconds spent inside it.
    """
    comm = program.comm
    rank = program.rank
    before = program.stopwatch.times()

    def turn_tag(gidx: int, sender: int) -> int:
        return tag_base + gidx * comm.size + sender

    with program.stage("shuffle") as scope:
        # Post every receive up front (one ibcast per inbound packet).
        recv_reqs: Dict[int, Dict[int, Request]] = {g: {} for g in my_groups}
        for rnd in rounds:
            for gidx, sender in rnd:
                group = groups[gidx]
                if sender == rank or rank not in group:
                    continue
                recv_reqs[gidx][sender] = comm.ibcast(
                    group, sender, turn_tag(gidx, sender), copy=False
                )

        unsent = [g for rnd in rounds for g, sender in rnd if sender == rank]
        send_reqs: List[Request] = []
        undecoded = set(g for g in my_groups if recv_reqs[g])

        def post_ready() -> None:
            """Encode + multicast every group whose subsets are mapped."""
            for gidx in list(unsent):
                if not ready(gidx):
                    continue
                unsent.remove(gidx)
                with program.stage("encode"):
                    packet = encode(gidx)
                send_reqs.append(
                    comm.ibcast(
                        groups[gidx], rank, turn_tag(gidx, rank), packet
                    )
                )

        def sweep() -> bool:
            """Decode every decodable group; report whether any was."""
            progressed = False
            for gidx in sorted(undecoded):
                if not ready(gidx):
                    continue
                reqs = recv_reqs[gidx]
                if not all(req.test() for req in reqs.values()):
                    continue
                payloads = {s: req.wait() for s, req in reqs.items()}
                with program.stage("decode"):
                    decode(gidx, payloads)
                undecoded.discard(gidx)
                progressed = True
            return progressed

        mapping = True
        while mapping:
            with program.stage("map"):
                mapping = bool(map_step())
            post_ready()
            sweep()

        post_ready()
        if unsent:
            raise RuntimeError(
                f"rank {rank}: groups {sorted(unsent)} still not encodable "
                "after map exhausted (ready() must be all-true by then)"
            )
        while undecoded:
            if not sweep():
                time.sleep(0.0005)
        wait_all(send_reqs)

    span = scope.elapsed
    times = program.stopwatch.times()

    def in_loop(stage: str) -> float:
        return times.get(stage, 0.0) - before.get(stage, 0.0)

    # shuffle_span approximates the Encode/Shuffle/Decode span (what the
    # parallel-schedule telemetry reports) by peeling the map work off the
    # whole-loop span; the loop span itself travels via export_overlap.
    program.stopwatch.add(
        "shuffle_span", max(0.0, span - in_loop("map"))
    )
    export_overlap(program, scope)
    return {
        "span": span,
        "map_overlapped": in_loop("map"),
        "encode_overlapped": in_loop("encode"),
        "decode_overlapped": in_loop("decode"),
    }


# ---------------------------------------------------------------------------
# Streaming-overlap telemetry (the "telemetry that can't lie" contract).
# ---------------------------------------------------------------------------

#: Pseudo-stage keys carrying per-node overlap telemetry to the driver.
OVERLAP_SPAN_KEY = "overlap_span"
OVERLAP_HIDDEN_KEY = "overlap_hidden"


def export_overlap(program: NodeProgram, scope: "_StageScope") -> None:
    """Stamp an overlapped loop's span + hidden-communication seconds.

    ``scope`` is the exited stage scope that wrapped the whole overlapped
    event loop: its ``elapsed`` is the loop span, its ``exclusive`` the
    exposed communication/wait time (nested compute scopes were charged
    to their own stages).  The difference — compute performed while
    transfers were concurrently in flight — is the upper bound on hidden
    communication, stamped as a pseudo-stage so the driver can aggregate
    it without touching the merged stage table.
    """
    program.stopwatch.add(OVERLAP_SPAN_KEY, scope.elapsed)
    program.stopwatch.add(
        OVERLAP_HIDDEN_KEY, max(0.0, scope.elapsed - scope.exclusive)
    )


def overlap_meta(per_node_times: Sequence[Dict[str, float]]) -> Dict[str, Any]:
    """Aggregate the per-node overlap stamps into the run-meta block."""
    spans = [t.get(OVERLAP_SPAN_KEY, 0.0) for t in per_node_times]
    hidden = [t.get(OVERLAP_HIDDEN_KEY, 0.0) for t in per_node_times]
    return {
        "span_seconds": max(spans, default=0.0),
        "hidden_seconds": max(hidden, default=0.0),
        "per_node_hidden_seconds": hidden,
    }


@dataclass
class ClusterResult:
    """Everything a cluster run returns to the driver.

    Attributes:
        results: per-rank return values of :meth:`NodeProgram.run`.
        stage_times: per-stage breakdown, max over nodes (barrier semantics,
            matching the paper's tables).
        per_node_times: raw per-rank stage dictionaries.
        traffic: the merged traffic log.
    """

    results: List[Any]
    stage_times: StageTimes
    per_node_times: List[Dict[str, float]] = field(default_factory=list)
    traffic: Optional[TrafficLog] = None

    @property
    def size(self) -> int:
        return len(self.results)


def assemble_cluster_result(
    results: List[Any],
    times: List[Dict[str, float]],
    traffic: Optional[TrafficLog],
    stages: List[str],
) -> ClusterResult:
    """Merge per-rank outputs into a :class:`ClusterResult`.

    Shared tail of every backend's run/pool collection loop; with no
    declared ``stages``, falls back to the union of observed stage names.
    """
    if not stages:
        stages = sorted({s for t in times for s in t})
    return ClusterResult(
        results=results,
        stage_times=StageTimes.merge_max(stages, times),
        per_node_times=times,
        traffic=traffic,
    )
