"""Node programs and the cluster-result container.

A :class:`NodeProgram` is the unit both sort algorithms are written as: a
class instantiated once per node with a :class:`~repro.runtime.api.Comm`
endpoint, whose :meth:`run` method walks the algorithm's stages.  The same
program runs unmodified on the threaded backend (functional tests, byte
accounting) and the multiprocessing backend (real parallel execution) —
mirroring how the paper's single MPI program runs on any cluster size.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.runtime.api import Comm
from repro.runtime.traffic import TrafficLog
from repro.utils.timer import StageTimes, Stopwatch


class NodeProgram(ABC):
    """Base class for per-node distributed programs.

    Subclasses implement :meth:`run`, using ``self.comm`` for communication
    and ``self.stopwatch`` (via ``self.stage(name)``) for per-stage timing.
    """

    #: Ordered stage names, used to merge breakdowns; subclasses override.
    STAGES: List[str] = []

    def __init__(self, comm: Comm) -> None:
        self.comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self.stopwatch = Stopwatch()

    def stage(self, name: str):
        """Enter stage ``name``: times it and attributes traffic to it."""
        self.comm.set_stage(name)
        return self.stopwatch.stage(name)

    @abstractmethod
    def run(self) -> Any:
        """Execute the node's share of the computation; return its result."""


#: A factory building the program for one node given its Comm endpoint.
ProgramFactory = Callable[[Comm], NodeProgram]


@dataclass
class ClusterResult:
    """Everything a cluster run returns to the driver.

    Attributes:
        results: per-rank return values of :meth:`NodeProgram.run`.
        stage_times: per-stage breakdown, max over nodes (barrier semantics,
            matching the paper's tables).
        per_node_times: raw per-rank stage dictionaries.
        traffic: the merged traffic log.
    """

    results: List[Any]
    stage_times: StageTimes
    per_node_times: List[Dict[str, float]] = field(default_factory=list)
    traffic: Optional[TrafficLog] = None

    @property
    def size(self) -> int:
        return len(self.results)
