"""Threaded in-process cluster backend.

Runs one OS thread per node with lock-protected mailboxes for tagged
point-to-point delivery.  This backend exists for *functional* fidelity —
end-to-end correctness tests, deterministic byte accounting, and the Fig. 1 /
Fig. 2 load measurements — not wall-clock performance (the GIL serializes
compute).  Real parallel timing comes from
:class:`repro.runtime.process.ProcessCluster` and the simulator.

Non-blocking primitives are cheap here: mailbox puts never block, so
``isend`` completes inline, and ``irecv`` / ``ibcast`` receives are lazy
mailbox pops (no helper threads; only TREE-mode interior relays spawn one).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.api import (
    BACKEND_TIMEOUT,
    Buffer,
    BufferParts,
    Comm,
    CommError,
    DEFAULT_CHUNK_BYTES,
    MulticastMode,
)
from repro.runtime.mailbox import Mailbox, MailboxClosed
from repro.runtime.program import (
    ClusterResult,
    NodeProgram,
    PreparedJob,
    ProgramFactory,
    assemble_cluster_result,
)
from repro.runtime.traffic import TrafficLog
from repro.utils import copytrack
from repro.utils.timer import StageTimes


class _ThreadComm(Comm):
    """Comm endpoint backed by shared-memory mailboxes."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: List[Mailbox],
        barrier: threading.Barrier,
        traffic: TrafficLog,
        multicast_mode: MulticastMode,
        recv_timeout: Optional[float],
        chunk_bytes: int,
        record_relays: bool,
    ) -> None:
        super().__init__(
            rank,
            size,
            traffic=traffic,
            multicast_mode=multicast_mode,
            chunk_bytes=chunk_bytes,
            record_relays=record_relays,
        )
        self._mailboxes = mailboxes
        self._barrier = barrier
        self._recv_timeout = recv_timeout

    def _send_raw(self, dst: int, tag: int, payload: BufferParts) -> None:
        # Mailboxes hold one buffer per frame.  Immutable single parts are
        # shared by reference (true zero-copy between threads); multi-part
        # frames are materialized once here — the producer-side copy this
        # backend charges instead of a kernel crossing.  *Mutable* buffers
        # (bytearrays, writable views such as an encoder's XOR arena) are
        # copied too: a completed blocking send must not alias caller
        # memory, because the caller is free to reuse its arena afterwards.
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            parts = [p for p in payload if len(p)]
            if len(parts) == 1:
                payload = parts[0]
            else:
                payload = b"".join(parts)
                copytrack.count_copy(len(payload), "inproc.send.join")
        if isinstance(payload, bytearray) or (
            isinstance(payload, memoryview) and not payload.readonly
        ):
            copytrack.count_copy(len(payload), "inproc.send.own")
            payload = bytes(payload)
        try:
            self._mailboxes[dst].put(self.rank, tag, payload)
        except MailboxClosed as exc:
            raise CommError(str(exc)) from exc

    def _recv_raw(self, src: int, tag: int, timeout=BACKEND_TIMEOUT) -> Buffer:
        if timeout is BACKEND_TIMEOUT:
            timeout = self._recv_timeout
        try:
            return self._mailboxes[self.rank].get(src, tag, timeout)
        except (MailboxClosed, TimeoutError) as exc:
            raise CommError(str(exc)) from exc

    def _poll_raw(self, src: int, tag: int) -> Optional[bytes]:
        try:
            return self._mailboxes[self.rank].poll(src, tag)
        except MailboxClosed as exc:
            raise CommError(str(exc)) from exc

    def _barrier_raw(self) -> None:
        try:
            self._barrier.wait(timeout=self._recv_timeout)
        except threading.BrokenBarrierError as exc:
            raise CommError("barrier broken (a peer failed)") from exc


class ThreadCluster:
    """A K-node cluster of threads sharing one traffic log.

    Args:
        size: number of nodes (the paper's ``K``).
        multicast_mode: linear or binomial-tree application multicast.
        recv_timeout: per-receive timeout in seconds; ``None`` disables it.
            Tests use a finite timeout so protocol bugs fail fast instead of
            deadlocking the suite.
        chunk_bytes: maximum raw-frame size for one user payload chunk.
        record_relays: additionally log every physical broadcast hop (kind
            ``"relay"``) to the traffic log.
    """

    def __init__(
        self,
        size: int,
        multicast_mode: MulticastMode = MulticastMode.LINEAR,
        recv_timeout: Optional[float] = 60.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        record_relays: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        self.size = size
        self.multicast_mode = multicast_mode
        self.recv_timeout = recv_timeout
        self.chunk_bytes = chunk_bytes
        self.record_relays = record_relays

    def run(self, factory: ProgramFactory) -> ClusterResult:
        """Run one program instance per node; gather results and timings.

        Any exception in any node thread is re-raised in the caller (the
        first one chronologically), after closing all mailboxes so the
        remaining threads unblock and exit.
        """
        mailboxes = [Mailbox() for _ in range(self.size)]
        barrier = threading.Barrier(self.size)
        traffic = TrafficLog()

        results: List[Any] = [None] * self.size
        times: List[Dict[str, float]] = [dict() for _ in range(self.size)]
        errors: List[Tuple[int, BaseException]] = []
        errors_lock = threading.Lock()
        programs: List[Optional[NodeProgram]] = [None] * self.size

        def worker(rank: int) -> None:
            comm: Optional[_ThreadComm] = None
            try:
                comm = _ThreadComm(
                    rank,
                    self.size,
                    mailboxes,
                    barrier,
                    traffic,
                    self.multicast_mode,
                    self.recv_timeout,
                    self.chunk_bytes,
                    self.record_relays,
                )
                program = factory(comm)
                programs[rank] = program
                results[rank] = program.run()
                times[rank] = program.stopwatch.times()
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with errors_lock:
                    errors.append((rank, exc))
                barrier.abort()
                for mb in mailboxes:
                    mb.close()
            finally:
                if comm is not None:
                    comm._close_async()

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"node-{rank}")
            for rank in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"node {rank} failed: {exc!r}") from exc

        return assemble_cluster_result(
            results, times, traffic, _collect_stages(programs)
        )


    def create_pool(self) -> "_ThreadPool":
        """A persistent worker pool over this cluster configuration.

        See :class:`_ThreadPool`; :class:`repro.session.Session` is the
        driver-facing API over it.
        """
        return _ThreadPool(self)


class _ThreadPool:
    """K persistent node threads running a per-rank job control loop.

    The threads are the long-lived part of the pool; the communication
    fabric (mailboxes + barrier + per-job traffic log) is rebuilt per job
    — mailboxes are cheap in-process objects, and a failed job's closed
    mailboxes / broken barrier must never leak into the next job.  A job
    failure therefore unblocks every peer (barrier abort + mailbox
    closure, exactly like :meth:`ThreadCluster.run`) while the pool
    itself survives to run the session's next job.
    """

    _STOP = ("stop",)

    def __init__(self, cluster: ThreadCluster) -> None:
        self._cluster = cluster
        self.size = cluster.size
        self._queues: List["queue.Queue"] = []
        self._results: "queue.Queue" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._job_seq = 0

    def _ensure_started(self) -> None:
        if self._threads:
            return
        self._queues = [queue.Queue() for _ in range(self.size)]
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(rank, self._queues[rank]),
                daemon=True,
                name=f"pool-node-{rank}",
            )
            for rank in range(self.size)
        ]
        for t in self._threads:
            t.start()

    def _worker(self, rank: int, jobs: "queue.Queue") -> None:
        cl = self._cluster
        while True:
            msg = jobs.get()
            if msg[0] != "job":
                return  # "stop"
            _, seq, builder, payload, mailboxes, barrier, traffic = msg
            comm: Optional[_ThreadComm] = None
            try:
                comm = _ThreadComm(
                    rank,
                    self.size,
                    mailboxes,
                    barrier,
                    traffic,
                    cl.multicast_mode,
                    cl.recv_timeout,
                    cl.chunk_bytes,
                    cl.record_relays,
                )
                comm.begin_job(seq, traffic)
                program = builder(comm, payload)
                result = program.run()
                self._results.put(
                    (
                        "ok",
                        rank,
                        seq,
                        result,
                        program.stopwatch.times(),
                        list(program.STAGES),
                    )
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                barrier.abort()
                for mb in mailboxes:
                    mb.close()
                self._results.put(("error", rank, seq, exc))
            finally:
                if comm is not None:
                    comm._close_async()

    def run_job(self, prepared: PreparedJob) -> ClusterResult:
        """Run one prepared job on the pool's threads; gather the result.

        Raises:
            RuntimeError: if any node program fails (first failure
                chronologically, like :meth:`ThreadCluster.run`); the pool
                survives and the next job runs on fresh mailboxes.
        """
        k = self.size
        prepared.check_size(k)
        self._ensure_started()
        seq = self._job_seq
        self._job_seq += 1
        mailboxes = [Mailbox() for _ in range(k)]
        barrier = threading.Barrier(k)
        traffic = TrafficLog()
        for rank in range(k):
            self._queues[rank].put(
                (
                    "job",
                    seq,
                    prepared.builder,
                    prepared.payloads[rank],
                    mailboxes,
                    barrier,
                    traffic,
                )
            )
        results: List[Any] = [None] * k
        times: List[Dict[str, float]] = [dict() for _ in range(k)]
        stages: List[str] = []
        errors: List[Tuple[int, BaseException]] = []
        # Workers always report: their own receives are bounded by the
        # cluster's recv_timeout, so the margin only covers compute.
        timeout = (
            None
            if self._cluster.recv_timeout is None
            else self._cluster.recv_timeout + 30.0
        )
        collected = 0
        while collected < k:
            try:
                msg = self._results.get(timeout=timeout)
            except queue.Empty:
                # Wedged compute: poison the job so stragglers unblock,
                # abandon the (daemon) threads, and restart next job.
                barrier.abort()
                for mb in mailboxes:
                    mb.close()
                self._threads = []
                raise RuntimeError(
                    f"thread pool job {seq} timed out"
                ) from None
            if msg[2] != seq:
                continue  # stale report from an abandoned earlier job
            collected += 1
            if msg[0] == "ok":
                _, rank, _, result, sw_times, prog_stages = msg
                results[rank] = result
                times[rank] = sw_times
                if prog_stages and not stages:
                    stages = prog_stages
            else:
                errors.append((msg[1], msg[3]))
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"node {rank} failed: {exc!r}") from exc
        return assemble_cluster_result(results, times, traffic, stages)

    def close(self) -> None:
        """Stop the worker threads (idempotent)."""
        for q in self._queues:
            q.put(self._STOP)
        for t in self._threads:
            t.join(timeout=10.0)
        self._threads = []
        self._queues = []

    def __enter__(self) -> "_ThreadPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _collect_stages(programs: List[Optional[NodeProgram]]) -> List[str]:
    for p in programs:
        if p is not None and p.STAGES:
            return list(p.STAGES)
    # Fall back to union of observed stage names in rank order.
    seen: List[str] = []
    for p in programs:
        if p is None:
            continue
        for s in p.stopwatch.times():
            if s not in seen:
                seen.append(s)
    return seen
