"""Threaded in-process cluster backend.

Runs one OS thread per node with lock-protected mailboxes for tagged
point-to-point delivery.  This backend exists for *functional* fidelity —
end-to-end correctness tests, deterministic byte accounting, and the Fig. 1 /
Fig. 2 load measurements — not wall-clock performance (the GIL serializes
compute).  Real parallel timing comes from
:class:`repro.runtime.process.ProcessCluster` and the simulator.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.runtime.api import Comm, CommError, MulticastMode
from repro.runtime.program import ClusterResult, NodeProgram, ProgramFactory
from repro.runtime.traffic import TrafficLog
from repro.utils.timer import StageTimes

_MailKey = Tuple[int, int]  # (src, tag)


class _Mailbox:
    """Per-node tagged mailbox with blocking selective receive."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: Dict[_MailKey, Deque[bytes]] = {}
        self._closed = False

    def put(self, src: int, tag: int, payload: bytes) -> None:
        with self._cond:
            if self._closed:
                raise CommError("mailbox closed (peer died?)")
            self._queues.setdefault((src, tag), deque()).append(payload)
            self._cond.notify_all()

    def get(self, src: int, tag: int, timeout: Optional[float]) -> bytes:
        key = (src, tag)
        with self._cond:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._closed:
                    raise CommError(
                        f"mailbox closed while waiting for (src={src}, tag={tag})"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise CommError(
                        f"recv timeout waiting for (src={src}, tag={tag})"
                    )

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class _ThreadComm(Comm):
    """Comm endpoint backed by shared-memory mailboxes."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: List[_Mailbox],
        barrier: threading.Barrier,
        traffic: TrafficLog,
        multicast_mode: MulticastMode,
        recv_timeout: Optional[float],
    ) -> None:
        super().__init__(rank, size, traffic=traffic, multicast_mode=multicast_mode)
        self._mailboxes = mailboxes
        self._barrier = barrier
        self._recv_timeout = recv_timeout

    def _send_raw(self, dst: int, tag: int, payload: bytes) -> None:
        self._mailboxes[dst].put(self.rank, tag, payload)

    def _recv_raw(self, src: int, tag: int) -> bytes:
        return self._mailboxes[self.rank].get(src, tag, self._recv_timeout)

    def _barrier_raw(self) -> None:
        try:
            self._barrier.wait(timeout=self._recv_timeout)
        except threading.BrokenBarrierError as exc:
            raise CommError("barrier broken (a peer failed)") from exc


class ThreadCluster:
    """A K-node cluster of threads sharing one traffic log.

    Args:
        size: number of nodes (the paper's ``K``).
        multicast_mode: linear or binomial-tree application multicast.
        recv_timeout: per-receive timeout in seconds; ``None`` disables it.
            Tests use a finite timeout so protocol bugs fail fast instead of
            deadlocking the suite.
    """

    def __init__(
        self,
        size: int,
        multicast_mode: MulticastMode = MulticastMode.LINEAR,
        recv_timeout: Optional[float] = 60.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        self.size = size
        self.multicast_mode = multicast_mode
        self.recv_timeout = recv_timeout

    def run(self, factory: ProgramFactory) -> ClusterResult:
        """Run one program instance per node; gather results and timings.

        Any exception in any node thread is re-raised in the caller (the
        first one chronologically), after closing all mailboxes so the
        remaining threads unblock and exit.
        """
        mailboxes = [_Mailbox() for _ in range(self.size)]
        barrier = threading.Barrier(self.size)
        traffic = TrafficLog()

        results: List[Any] = [None] * self.size
        times: List[Dict[str, float]] = [dict() for _ in range(self.size)]
        errors: List[Tuple[int, BaseException]] = []
        errors_lock = threading.Lock()
        programs: List[Optional[NodeProgram]] = [None] * self.size

        def worker(rank: int) -> None:
            comm = _ThreadComm(
                rank,
                self.size,
                mailboxes,
                barrier,
                traffic,
                self.multicast_mode,
                self.recv_timeout,
            )
            try:
                program = factory(comm)
                programs[rank] = program
                results[rank] = program.run()
                times[rank] = program.stopwatch.times()
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with errors_lock:
                    errors.append((rank, exc))
                barrier.abort()
                for mb in mailboxes:
                    mb.close()

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"node-{rank}")
            for rank in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"node {rank} failed: {exc!r}") from exc

        stages = _collect_stages(programs)
        return ClusterResult(
            results=results,
            stage_times=StageTimes.merge_max(stages, times),
            per_node_times=times,
            traffic=traffic,
        )


def _collect_stages(programs: List[Optional[NodeProgram]]) -> List[str]:
    for p in programs:
        if p is not None and p.STAGES:
            return list(p.STAGES)
    # Fall back to union of observed stage names in rank order.
    seen: List[str] = []
    for p in programs:
        if p is None:
            continue
        for s in p.stopwatch.times():
            if s not in seen:
                seen.append(s)
    return seen
