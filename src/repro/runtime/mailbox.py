"""Tagged mailbox shared by the threaded and multiprocessing backends.

A :class:`Mailbox` is one node's inbound message store: frames are keyed by
``(src, tag)`` and delivered FIFO per key.  It supports the three access
patterns the runtime needs:

* ``get`` — blocking selective receive (the classic MPI-style matching);
* ``poll`` — non-blocking probe-and-pop, backing ``Request.test()`` of the
  non-blocking API;
* per-source closure — when a peer's channel dies, only receives matching
  that source fail; traffic from healthy peers keeps flowing (the
  multiprocessing backend's per-peer reader threads close their source on
  EOF while the rest of the mesh stays up).

``close()`` (global) additionally fails *all* pending receives — used by the
threaded backend when any node thread dies so the rest unblock promptly.

Frames are opaque buffers (``bytes`` / ``bytearray`` / ``memoryview``) and
are handed to the consumer *by reference* — the zero-copy ``copy=False``
receive path slices views straight off whatever the producer enqueued (a
receive arena in the multiprocessing backend, possibly the sender's own
memory in the threaded backend).  Consumers must treat popped frames as
read-only.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple, Union

_MailKey = Tuple[int, int]  # (src, tag)
_Frame = Union[bytes, bytearray, memoryview]


class MailboxClosed(Exception):
    """Raised by ``get`` when the mailbox (or the awaited source) is closed."""


class Mailbox:
    """Per-node tagged mailbox with blocking and non-blocking receive."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: Dict[_MailKey, Deque[_Frame]] = {}
        self._closed = False
        self._closed_sources: Dict[int, str] = {}

    def put(self, src: int, tag: int, payload: _Frame) -> None:
        with self._cond:
            if self._closed:
                raise MailboxClosed("mailbox closed (peer died?)")
            self._queues.setdefault((src, tag), deque()).append(payload)
            self._cond.notify_all()

    def get(self, src: int, tag: int, timeout: Optional[float]) -> _Frame:
        """Pop the next frame for ``(src, tag)``, blocking until one arrives.

        Raises:
            MailboxClosed: the mailbox or the awaited source was closed and
                no matching frame remains buffered.
            TimeoutError: no frame arrived within ``timeout`` seconds.
        """
        key = (src, tag)
        # One absolute deadline for the whole call: wakeups for *other*
        # keys (notify_all fires on every put) must not restart the clock,
        # or a stuck receive would never time out while unrelated traffic
        # keeps flowing.
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._closed:
                    raise MailboxClosed(
                        f"mailbox closed while waiting for (src={src}, tag={tag})"
                    )
                if src in self._closed_sources:
                    raise MailboxClosed(
                        f"source {src} closed while waiting for tag {tag}: "
                        f"{self._closed_sources[src]}"
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"recv timeout waiting for (src={src}, tag={tag})"
                    )
                self._cond.wait(timeout=remaining)

    def poll(self, src: int, tag: int) -> Optional[_Frame]:
        """Pop the next frame for ``(src, tag)`` if one is buffered, else None.

        Buffered frames drain first; once the mailbox (or the polled
        source) is closed and nothing matching remains, the poll raises so
        a ``test()``-polling caller observes peer death instead of
        spinning forever.

        Raises:
            MailboxClosed: the source can never deliver a matching frame.
        """
        with self._cond:
            q = self._queues.get((src, tag))
            if q:
                return q.popleft()
            if self._closed:
                raise MailboxClosed(
                    f"mailbox closed while polling (src={src}, tag={tag})"
                )
            if src in self._closed_sources:
                raise MailboxClosed(
                    f"source {src} closed while polling tag {tag}: "
                    f"{self._closed_sources[src]}"
                )
            return None

    def purge(self, match: "Callable[[int, int], bool]") -> int:
        """Drop every buffered frame whose ``(src, tag)`` key matches.

        Long-lived endpoints that run many overlapping jobs (the sort
        service's subset workers) reclaim a finished or aborted job's
        undelivered frames with this — unlike the one-job-at-a-time
        pools, they never tear the whole mailbox down between jobs.

        Returns:
            The number of frames dropped.
        """
        with self._cond:
            dropped = 0
            for key in [k for k in self._queues if match(*k)]:
                dropped += len(self._queues[key])
                del self._queues[key]
            return dropped

    def close_source(self, src: int, reason: str) -> None:
        """Fail future receives from ``src`` (already-buffered frames drain)."""
        with self._cond:
            self._closed_sources.setdefault(src, reason)
            self._cond.notify_all()

    def reopen_source(self, src: int) -> None:
        """Clear a per-source closure: a replacement peer took over ``src``.

        Elastic pools recycle a dead worker's rank — when the rejoined
        worker's fresh connection is integrated, receives from that
        source must block for new frames again instead of failing on the
        old incarnation's EOF.  A no-op if the source was never closed.
        """
        with self._cond:
            self._closed_sources.pop(src, None)
            self._cond.notify_all()

    def close(self) -> None:
        """Fail all pending and future receives."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
