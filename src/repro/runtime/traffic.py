"""Traffic accounting for communication-load measurements.

The paper defines the communication load ``L`` as the total amount of
intermediate data *exchanged*, where a multicast packet counts **once** no
matter how many nodes it serves — that is exactly the quantity coding
reduces.  The wire, in contrast, carries an application-layer multicast as
``(group size - 1)`` unicasts (whether linear or tree-shaped: every non-root
member receives the payload exactly once).

:class:`TrafficLog` therefore tracks both quantities per record:

* ``load_bytes``  = payload size (multicast counted once);
* ``wire_bytes``  = payload size x number of receivers.

Records carry the stage name active when they were emitted, so per-stage
summaries (e.g. "Shuffle only") can be extracted.

A third record kind, ``"relay"``, logs one *physical hop* of an
application-layer multicast (root-to-member in LINEAR mode, every
parent-to-child tree edge in TREE mode) when a backend is created with
``record_relays=True``.  Relay records are supplementary detail: they are
excluded from the logical load/wire/message summaries (the one multicast
record already accounts for them) and surfaced through
:meth:`TrafficLog.relay_bytes` / :meth:`TrafficLog.link_bytes`, which let
tree and linear multicast be compared byte-for-byte per link.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TrafficRecord:
    """One logical transfer (unicast / multicast) or one physical relay hop."""

    stage: str
    kind: str  # "unicast" | "multicast" | "relay"
    src: int
    dsts: Tuple[int, ...]
    payload_bytes: int

    @property
    def load_bytes(self) -> int:
        return self.payload_bytes

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes * len(self.dsts)


class TrafficLog:
    """Thread-safe append-only log of :class:`TrafficRecord`."""

    def __init__(self) -> None:
        self._records: List[TrafficRecord] = []
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Job results (and the TrafficLog inside them) travel the
        # service control port pickled; locks don't.
        with self._lock:
            return {"_records": list(self._records)}

    def __setstate__(self, state: dict) -> None:
        self._records = state["_records"]
        self._lock = threading.Lock()

    def record(
        self,
        stage: str,
        kind: str,
        src: int,
        dsts: Iterable[int],
        payload_bytes: int,
    ) -> None:
        if kind not in ("unicast", "multicast", "relay"):
            raise ValueError(f"unknown traffic kind {kind!r}")
        rec = TrafficRecord(
            stage=stage,
            kind=kind,
            src=src,
            dsts=tuple(dsts),
            payload_bytes=int(payload_bytes),
        )
        with self._lock:
            self._records.append(rec)

    def extend(self, records: Iterable[TrafficRecord]) -> None:
        with self._lock:
            self._records.extend(records)

    @property
    def records(self) -> List[TrafficRecord]:
        with self._lock:
            return list(self._records)

    # -- summaries -----------------------------------------------------------

    def _logical(self, stage: Optional[str]) -> Iterable[TrafficRecord]:
        """Logical transfers only (relay hops excluded), stage-filtered."""
        return (
            r
            for r in self.records
            if r.kind != "relay" and (stage is None or r.stage == stage)
        )

    def load_bytes(self, stage: Optional[str] = None) -> int:
        """Total load bytes, optionally restricted to one stage."""
        return sum(r.load_bytes for r in self._logical(stage))

    def wire_bytes(self, stage: Optional[str] = None) -> int:
        return sum(r.wire_bytes for r in self._logical(stage))

    def message_count(self, stage: Optional[str] = None) -> int:
        return sum(1 for _ in self._logical(stage))

    def by_stage(self) -> Dict[str, int]:
        """Stage name -> load bytes."""
        out: Dict[str, int] = {}
        for r in self._logical(None):
            out[r.stage] = out.get(r.stage, 0) + r.load_bytes
        return out

    def by_sender(self, stage: Optional[str] = None) -> Dict[int, int]:
        """Sender rank -> load bytes (for balance checks)."""
        out: Dict[int, int] = {}
        for r in self._logical(stage):
            out[r.src] = out.get(r.src, 0) + r.load_bytes
        return out

    # -- physical (per-hop) summaries ----------------------------------------

    def relay_records(self, stage: Optional[str] = None) -> List[TrafficRecord]:
        """All relay-hop records (requires a ``record_relays=True`` backend)."""
        return [
            r
            for r in self.records
            if r.kind == "relay" and (stage is None or r.stage == stage)
        ]

    def relay_bytes(self, stage: Optional[str] = None) -> int:
        """Total physical broadcast-hop bytes (one count per link crossed)."""
        return sum(r.payload_bytes for r in self.relay_records(stage))

    def link_bytes(
        self, stage: Optional[str] = None
    ) -> Dict[Tuple[int, int], int]:
        """``(src, dst) -> physical bytes`` over relay hops.

        With ``record_relays=True`` this is the per-link traffic matrix of
        the application-layer multicast, letting LINEAR and TREE modes be
        compared byte-for-byte (totals match the logical ``wire_bytes``;
        the *distribution* over links differs).
        """
        out: Dict[Tuple[int, int], int] = {}
        for r in self.relay_records(stage):
            for dst in r.dsts:
                key = (r.src, dst)
                out[key] = out.get(key, 0) + r.payload_bytes
        return out

    def normalized_load(self, total_intermediate_bytes: int, stage: str) -> float:
        """The paper's ``L``: stage load bytes / total intermediate bytes.

        For sorting, ``total_intermediate_bytes`` is the full dataset size
        (``Q*N`` intermediate values of the map outputs in the general
        formulation reduce to "all bytes must reach their reducer").
        """
        if total_intermediate_bytes <= 0:
            raise ValueError("total_intermediate_bytes must be positive")
        return self.load_bytes(stage) / total_intermediate_bytes
