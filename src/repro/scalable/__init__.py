"""Scalable (grouped) coded sorting — the paper's §VI future direction.

CodedTeraSort's CodeGen stage costs ``C(K, r+1)`` multicast-group setups,
which the paper identifies as the scalability wall ("Scalable Coding",
§VI): at K=20, r=5 it already burns 140.91 s of the 441.10 s total.  The
group-based construction of the authors' follow-up work [24] trades a
bounded amount of communication load for an exponential CodeGen saving:

* the ``K`` nodes are partitioned into ``G = K / g`` groups of ``g``;
* **every group stores the whole dataset**, placed within the group under
  the usual ``r``-redundant coded placement (so per-node storage and Map
  work rise from ``r/K`` to ``r/g`` of the input);
* each node still reduces one of the ``K`` key partitions, and all the
  intermediate values it needs live *inside its own group* — shuffles are
  entirely intra-group coded multicasts, and the ``G`` group shuffles can
  run concurrently;
* CodeGen shrinks from ``C(K, r+1)`` groups to ``C(g, r+1)`` per group —
  e.g. 38,760 -> 210 per group at K=20, g=10, r=5.

The communication load rises from ``(1/r)(1 - r/K)`` to ``(1/r)(1 - r/g)``
(Eq. (2) with K -> g); the package's theory module quantifies the whole
trade and the benchmarks locate the crossovers.
"""

from repro.scalable.grouping import NodeGrouping
from repro.scalable.placement import GroupedCodedPlacement
from repro.scalable.program import (
    GroupedCodedTeraSortProgram,
    run_grouped_coded_terasort,
)
from repro.scalable.sim import simulate_grouped_coded_terasort
from repro.scalable.theory import (
    grouped_codegen_groups,
    grouped_comm_load,
    grouped_vs_full,
)

__all__ = [
    "NodeGrouping",
    "GroupedCodedPlacement",
    "GroupedCodedTeraSortProgram",
    "run_grouped_coded_terasort",
    "simulate_grouped_coded_terasort",
    "grouped_comm_load",
    "grouped_codegen_groups",
    "grouped_vs_full",
]
