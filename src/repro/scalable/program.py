"""Grouped CodedTeraSort: the node program and driver.

Each node runs the six CodedTeraSort stages *scoped to its group*: the
coding plan is built over the ``g`` group members, the retention rule
keeps intermediate values only for group-mates, and the multicast shuffle
walks the group's serial schedule — groups proceed concurrently since
they share no nodes (the intra-group serialization mirrors Fig. 9(b)
within each group).

Every record is mapped by ``r`` nodes in *each* of the ``G`` groups, but
is reduced exactly once: only the group owning the record's key partition
keeps its intermediate value; the other groups drop it at Map time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.coded_common import group_store_by_subset
from repro.core.decoding import recover_intermediate
from repro.core.encoding import CodedPacket, encode_packet
from repro.core.groups import CodingPlan, build_coding_plan
from repro.core.mapper import hash_file
from repro.core.partitioner import RangePartitioner
from repro.core.terasort import SortRun, _build_partitioner
from repro.kvpairs.records import RecordBatch
from repro.kvpairs.sorting import sort_batch
from repro.runtime.api import Comm
from repro.runtime.program import ClusterResult, NodeProgram
from repro.scalable.grouping import NodeGrouping
from repro.scalable.placement import GroupedCodedPlacement
from repro.utils.subsets import Subset, binomial

#: Tag base for grouped multicast shuffle; must clear the plain sort tags.
GROUPED_TAG_BASE = 40_000

STAGES_GROUPED = ["codegen", "map", "encode", "shuffle", "decode", "reduce"]


class GroupedCodedTeraSortProgram(NodeProgram):
    """Per-node grouped CodedTeraSort execution.

    Args:
        comm: communication endpoint.
        grouping: the cluster's group structure.
        files: file id -> data for every file on this node.
        member_subsets: file id -> member-index subset of the file.
        partitioner: the shared ``K``-way range partitioner.
        redundancy: within-group computation load ``r``.
    """

    STAGES = STAGES_GROUPED

    def __init__(
        self,
        comm: Comm,
        grouping: NodeGrouping,
        files: Dict[int, RecordBatch],
        member_subsets: Dict[int, Subset],
        partitioner: RangePartitioner,
        redundancy: int,
    ) -> None:
        super().__init__(comm)
        self.grouping = grouping
        self.files = files
        self.member_subsets = member_subsets
        self.partitioner = partitioner
        self.redundancy = redundancy
        self.group = grouping.group_of(self.rank)
        self.member = grouping.member_index(self.rank)

    def _global_subset(self, member_subset: Subset) -> Subset:
        return self.grouping.to_global(self.group, member_subset)

    def run(self) -> RecordBatch:
        rank = self.rank
        g = self.grouping.group_size
        members = self.grouping.members(self.group)

        with self.stage("codegen"):
            # The plan is over member indices; every group builds the same
            # one and translates to its own ranks.
            plan: CodingPlan = build_coding_plan(g, self.redundancy)
            my_subgroups = plan.groups_of_node[self.member]
            global_groups: Dict[int, Subset] = {
                gidx: self._global_subset(plan.groups[gidx])
                for gidx in range(plan.num_groups)
            }

        with self.stage("map"):
            # Hash each file into all K partitions; keep the own partition
            # plus group-mates' partitions not already mapped by them.
            # Partitions owned by other groups are dropped: those groups
            # hold their own copy of the file.
            kept: Dict[int, Dict[int, RecordBatch]] = {}
            subsets_global: Dict[int, Subset] = {}
            for file_id in sorted(self.files):
                member_subset = self.member_subsets[file_id]
                if self.member not in member_subset:
                    raise ValueError(
                        f"node {rank} (member {self.member}) asked to map "
                        f"file {file_id} of member subset {member_subset}"
                    )
                parts = hash_file(self.files[file_id], self.partitioner)
                in_subset = set(member_subset)
                retained: Dict[int, RecordBatch] = {rank: parts[rank]}
                for mate in members:
                    m_idx = self.grouping.member_index(mate)
                    if mate != rank and m_idx not in in_subset:
                        retained[mate] = parts[mate]
                kept[file_id] = retained
                subsets_global[file_id] = self._global_subset(member_subset)
            store: Dict[Tuple[Subset, int], RecordBatch] = (
                group_store_by_subset(kept, subsets_global)
            )

        with self.stage("encode"):
            serialized: Dict[Tuple[Subset, int], bytes] = {
                key: batch.to_bytes() for key, batch in store.items()
            }

            def lookup(subset: Subset, target: int) -> bytes:
                return serialized[(subset, target)]

            # Gather-list wire form: header + XOR-arena view, never joined.
            packets_out = {
                gidx: encode_packet(
                    rank, global_groups[gidx], lookup
                ).to_parts()
                for gidx in my_subgroups
            }

        with self.stage("shuffle"):
            # Serial turns *within* the group (Fig. 9(b) scoped to g
            # members); groups share no nodes, so the G shuffles overlap.
            received_raw: Dict[int, Dict[int, bytes]] = {
                gidx: {} for gidx in my_subgroups
            }
            tag_stride = plan.num_groups
            for turn in range(g):
                sender = members[turn]
                for gidx in plan.groups_of_node[turn]:
                    group_ranks = global_groups[gidx]
                    if rank not in group_ranks:
                        continue
                    tag = GROUPED_TAG_BASE + self.group * tag_stride + gidx
                    if sender == rank:
                        self.comm.bcast(
                            group_ranks, rank, tag, packets_out[gidx]
                        )
                    else:
                        received_raw[gidx][sender] = self.comm.bcast(
                            group_ranks, sender, tag, copy=False
                        )

        with self.stage("decode"):
            decoded: List[RecordBatch] = []
            for gidx in my_subgroups:
                packets = {
                    sender: CodedPacket.from_bytes(raw)
                    for sender, raw in received_raw[gidx].items()
                }
                raw_value = recover_intermediate(
                    rank, global_groups[gidx], packets, lookup
                )
                decoded.append(RecordBatch.from_buffer(raw_value))

        with self.stage("reduce"):
            own = [
                batch
                for (subset, target), batch in store.items()
                if target == rank
            ]
            result = sort_batch(RecordBatch.concat(own + decoded))
        return result


def run_grouped_coded_terasort(
    cluster,
    data: RecordBatch,
    redundancy: int,
    group_size: int,
    batches_per_subset: int = 1,
    sampled_partitioner: bool = False,
    sample_size: int = 10000,
    sample_seed: int = 7,
) -> SortRun:
    """Sort ``data`` with grouped CodedTeraSort on ``cluster``.

    Args:
        cluster: any backend with ``size`` and ``run(factory)``.
        data: the full input batch.
        redundancy: within-group ``r`` (``1 <= r < group_size``).
        group_size: ``g``; must divide the cluster size.
        batches_per_subset: files per member subset.
        sampled_partitioner / sample_size / sample_seed: see
            :func:`repro.core.terasort.run_terasort`.

    Returns:
        A :class:`~repro.core.terasort.SortRun`; ``meta`` carries the
        grouped plan statistics (per-group CodeGen size, total
        multicasts, storage factor).
    """
    k = cluster.size
    grouping = NodeGrouping(num_nodes=k, group_size=group_size)
    partitioner = _build_partitioner(
        data, k, sampled_partitioner, sample_size, sample_seed
    )
    placement = GroupedCodedPlacement(grouping, redundancy, batches_per_subset)
    assignments = placement.place(data)
    views = placement.per_node_views(assignments)
    member_subsets = {
        fa.file_id: fa.member_subset for fa in assignments
    }

    def factory(comm: Comm) -> GroupedCodedTeraSortProgram:
        return GroupedCodedTeraSortProgram(
            comm,
            grouping,
            views[comm.rank],
            {f: member_subsets[f] for f in views[comm.rank]},
            partitioner,
            redundancy,
        )

    result: ClusterResult = cluster.run(factory)
    g = group_size
    per_group_codegen = binomial(g, redundancy + 1)
    return SortRun(
        partitions=list(result.results),
        stage_times=result.stage_times,
        traffic=result.traffic,
        partitioner=partitioner,
        meta={
            "algorithm": "grouped_coded_terasort",
            "num_nodes": k,
            "group_size": g,
            "num_groups": grouping.num_groups,
            "redundancy": redundancy,
            "batches_per_subset": batches_per_subset,
            "input_records": len(data),
            "num_files": placement.num_files,
            "files_per_node": placement.files_per_node(),
            "codegen_groups_per_group": per_group_codegen,
            "total_multicasts": grouping.num_groups
            * per_group_codegen
            * (redundancy + 1),
        },
    )
