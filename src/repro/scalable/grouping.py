"""Partitioning the cluster into coding groups.

Nodes are grouped contiguously: node ``k`` belongs to group ``k // g`` as
member ``k % g``.  All coding structure (file subsets, multicast groups)
is expressed in *member indices* ``0..g-1`` and translated to global ranks
per group, so every group runs an identical plan on its own members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.utils.subsets import Subset


@dataclass(frozen=True)
class NodeGrouping:
    """A partition of ``num_nodes`` ranks into groups of ``group_size``.

    Attributes:
        num_nodes: ``K``; must be a positive multiple of ``group_size``.
        group_size: ``g >= 2`` (a group of one has no one to talk to).
    """

    num_nodes: int
    group_size: int

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ValueError(
                f"group_size must be >= 2, got {self.group_size}"
            )
        if self.num_nodes < self.group_size:
            raise ValueError(
                f"num_nodes ({self.num_nodes}) < group_size "
                f"({self.group_size})"
            )
        if self.num_nodes % self.group_size != 0:
            raise ValueError(
                f"num_nodes ({self.num_nodes}) must be a multiple of "
                f"group_size ({self.group_size})"
            )

    @property
    def num_groups(self) -> int:
        """``G = K / g``."""
        return self.num_nodes // self.group_size

    def group_of(self, node: int) -> int:
        """The group index of ``node``."""
        self._check_node(node)
        return node // self.group_size

    def member_index(self, node: int) -> int:
        """``node``'s position within its group (``0..g-1``)."""
        self._check_node(node)
        return node % self.group_size

    def members(self, group: int) -> Tuple[int, ...]:
        """Global ranks of ``group``'s members, ascending."""
        if not 0 <= group < self.num_groups:
            raise ValueError(
                f"group {group} out of range({self.num_groups})"
            )
        start = group * self.group_size
        return tuple(range(start, start + self.group_size))

    def to_global(self, group: int, member_subset: Subset) -> Subset:
        """Translate a member-index subset into global ranks for ``group``."""
        members = self.members(group)
        for m in member_subset:
            if not 0 <= m < self.group_size:
                raise ValueError(
                    f"member index {m} out of range({self.group_size})"
                )
        return tuple(members[m] for m in member_subset)

    def groupmates(self, node: int) -> List[int]:
        """All members of ``node``'s group, including ``node``."""
        return list(self.members(self.group_of(node)))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range({self.num_nodes})"
            )
