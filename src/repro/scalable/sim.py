"""Simulator support for grouped CodedTeraSort.

The grouped node program mirrors :func:`repro.sim.stages.coded_terasort_node`
with three structural changes:

* compute volumes follow the grouped workload (Map hashes ``r/g`` of the
  input per node; CodeGen sets up ``C(g, r+1)`` groups);
* shuffles are *intra-group serial* — each group's members take turns on a
  per-group barrier — while the ``G`` groups transmit concurrently on the
  parallel fabric (they share no NICs, so MultiLock admits them together);
* stage hand-offs still synchronize globally (the paper's synchronous
  stage execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kvpairs.records import RECORD_BYTES
from repro.scalable.grouping import NodeGrouping
from repro.sim.costmodel import EC2CostModel
from repro.sim.des import Barrier, Environment, SimGenerator
from repro.sim.network import NetworkModel
from repro.sim.runner import PAPER_RECORDS, SimReport
from repro.sim.stages import STAGE_ORDER_CODED, _StageTable
from repro.utils.subsets import binomial
from repro.utils.timer import StageTimes


@dataclass(frozen=True)
class GroupedWorkload:
    """Balanced-workload quantities for the grouped scheme.

    Structurally a :class:`~repro.sim.workload.CodedWorkload` on ``g``
    nodes, except sizes divide by the *global* partition count ``K`` (each
    group holds the whole dataset but only reduces its ``g`` partitions).
    """

    num_nodes: int
    group_size: int
    redundancy: int
    n_records: int

    def __post_init__(self) -> None:
        if self.num_nodes % self.group_size != 0:
            raise ValueError(
                f"num_nodes ({self.num_nodes}) not a multiple of "
                f"group_size ({self.group_size})"
            )
        if not 1 <= self.redundancy < self.group_size:
            raise ValueError(
                f"redundancy must be in [1, g-1], got {self.redundancy}"
            )

    @property
    def num_groups_of_nodes(self) -> int:
        return self.num_nodes // self.group_size

    @property
    def total_bytes(self) -> float:
        return self.n_records * RECORD_BYTES

    @property
    def num_files(self) -> int:
        return binomial(self.group_size, self.redundancy)

    @property
    def files_per_node(self) -> int:
        return binomial(self.group_size - 1, self.redundancy - 1)

    @property
    def codegen_groups(self) -> int:
        """Multicast subgroups per coding group: ``C(g, r+1)``."""
        return binomial(self.group_size, self.redundancy + 1)

    @property
    def subgroups_per_node(self) -> int:
        return binomial(self.group_size - 1, self.redundancy)

    @property
    def file_bytes(self) -> float:
        return self.total_bytes / self.num_files

    @property
    def intermediate_bytes(self) -> float:
        """One ``I^t_S``: a file's share of one of the K partitions."""
        return self.file_bytes / self.num_nodes

    @property
    def packet_bytes(self) -> float:
        return self.intermediate_bytes / self.redundancy

    @property
    def map_pairs_per_node(self) -> float:
        """Each node hashes ``r/g`` of all records."""
        return self.n_records * self.redundancy / self.group_size

    @property
    def encode_serialize_bytes_per_node(self) -> float:
        """Retained-for-group-mates values: ``C(g-1,r-1)(g-r)`` of them."""
        return (
            self.files_per_node
            * (self.group_size - self.redundancy)
            * self.intermediate_bytes
        )

    @property
    def encode_xor_bytes_per_node(self) -> float:
        return self.subgroups_per_node * self.intermediate_bytes

    @property
    def total_multicasts(self) -> int:
        return (
            self.num_groups_of_nodes
            * self.codegen_groups
            * (self.redundancy + 1)
        )

    @property
    def shuffle_payload_total(self) -> float:
        """``(1/r)(1 - r/g) D`` — the grouped Eq. (2) load times D."""
        return self.total_multicasts * self.packet_bytes

    @property
    def decode_recovered_bytes_per_node(self) -> float:
        return self.subgroups_per_node * self.intermediate_bytes

    @property
    def decode_packets_per_node(self) -> int:
        return self.subgroups_per_node * self.redundancy

    @property
    def reduce_pairs_per_node(self) -> float:
        return self.n_records / self.num_nodes


def grouped_coded_node(
    env: Environment,
    rank: int,
    work: GroupedWorkload,
    cost: EC2CostModel,
    net: NetworkModel,
    global_barrier: Barrier,
    group_barrier: Barrier,
    grouping: NodeGrouping,
    table: _StageTable,
    granularity: str = "transfer",
) -> SimGenerator:
    """One grouped-CodedTeraSort node process (six stages).

    ``granularity="turn"`` batches a member's whole sending turn into one
    fabric hold (byte-identical totals; required for large ``C(g-1, r)``
    per-node packet counts).
    """
    g = work.group_size
    r = work.redundancy
    members = grouping.members(grouping.group_of(rank))

    # CodeGen — per node, its own group's C(g, r+1) subgroup setups.
    start = env.now
    yield env.timeout(cost.codegen_time(work.codegen_groups))
    table.record(rank, "codegen", env.now - start)
    yield global_barrier.wait()

    # Map
    start = env.now
    yield env.timeout(cost.map_time(work.map_pairs_per_node, r))
    table.record(rank, "map", env.now - start)
    yield global_barrier.wait()

    # Encode
    start = env.now
    yield env.timeout(
        cost.encode_time(
            work.encode_serialize_bytes_per_node,
            work.encode_xor_bytes_per_node,
        )
    )
    table.record(rank, "encode", env.now - start)
    yield global_barrier.wait()

    # Shuffle: serial turns inside the group, groups concurrent.
    start = env.now
    for turn in range(g):
        if members[turn] == rank:
            if granularity == "turn":
                duration = work.subgroups_per_node * cost.multicast_time(
                    work.packet_bytes, r
                )
                yield from net.batched_hold(
                    [rank],
                    duration,
                    payload=work.subgroups_per_node * work.packet_bytes,
                    kind="multicast",
                )
            else:
                for _ in range(work.subgroups_per_node):
                    dsts = [m for m in members if m != rank][:r]
                    yield from net.multicast(rank, dsts, work.packet_bytes)
        yield group_barrier.wait()
    table.record(rank, "shuffle", env.now - start)
    yield global_barrier.wait()

    # Decode
    start = env.now
    yield env.timeout(
        cost.decode_time(
            work.decode_recovered_bytes_per_node,
            work.decode_packets_per_node,
        )
    )
    table.record(rank, "decode", env.now - start)
    yield global_barrier.wait()

    # Reduce
    start = env.now
    yield env.timeout(cost.reduce_time(work.reduce_pairs_per_node, r))
    table.record(rank, "reduce", env.now - start)
    yield global_barrier.wait()


def simulate_grouped_coded_terasort(
    num_nodes: int,
    group_size: int,
    redundancy: int,
    n_records: int = PAPER_RECORDS,
    cost: Optional[EC2CostModel] = None,
    granularity: str = "transfer",
) -> SimReport:
    """Simulate the grouped scheme at paper scale.

    The fabric runs in parallel mode so the ``G`` group shuffles overlap;
    the per-group serial turns reproduce the paper's intra-group schedule.
    Note the multicast destinations within the simulator are a fixed
    ``r``-subset of group-mates — transfer *sizes and counts* are what the
    timing depends on, not which mates receive.

    Args:
        num_nodes: ``K``.
        group_size: ``g`` (divides ``K``).
        redundancy: within-group ``r``.
        n_records: dataset size (default: the paper's 120 M records).
        cost: cost model (default: the paper calibration).
        granularity: ``"transfer"`` (event per multicast) or ``"turn"``
            (one fabric hold per sending turn; use for large ``C(g-1, r)``).

    Returns:
        A :class:`~repro.sim.runner.SimReport` with the six-stage
        breakdown.
    """
    if granularity not in ("transfer", "turn"):
        raise ValueError(f"unknown event granularity {granularity!r}")
    cost = cost or EC2CostModel.paper_calibrated()
    work = GroupedWorkload(
        num_nodes=num_nodes,
        group_size=group_size,
        redundancy=redundancy,
        n_records=n_records,
    )
    grouping = NodeGrouping(num_nodes=num_nodes, group_size=group_size)
    env = Environment()
    net = NetworkModel(env, num_nodes, cost, serial=False)
    global_barrier = Barrier(env, num_nodes)
    group_barriers: Dict[int, Barrier] = {
        j: Barrier(env, group_size) for j in range(grouping.num_groups)
    }
    table = _StageTable(num_nodes)
    for rank in range(num_nodes):
        env.process(
            grouped_coded_node(
                env,
                rank,
                work,
                cost,
                net,
                global_barrier,
                group_barriers[grouping.group_of(rank)],
                grouping,
                table,
                granularity,
            )
        )
    env.run()
    stage_times = StageTimes.merge_max(STAGE_ORDER_CODED, table.per_node)
    return SimReport(
        algorithm="grouped_coded_terasort",
        stage_times=stage_times,
        num_nodes=num_nodes,
        redundancy=redundancy,
        n_records=n_records,
        transfers=net.transfers,
        shuffle_payload_bytes=net.multicast_payload,
        meta={
            "group_size": group_size,
            "num_groups": grouping.num_groups,
            "codegen_groups_per_group": work.codegen_groups,
            "packet_bytes": work.packet_bytes,
            "total_multicasts": work.total_multicasts,
            "fabric_busy_time": net.busy_time,
            "sim_end_time": env.now,
        },
    )
