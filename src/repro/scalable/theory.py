"""Closed forms for the grouped (scalable) coded construction.

All loads are normalized by the total input bytes ``D`` (the paper's
convention for Eq. (2)).  With ``K`` nodes in groups of ``g`` and
within-group redundancy ``r``:

====================  =======================  ========================
quantity              plain CodedTeraSort      grouped
====================  =======================  ========================
comm load             ``(1/r)(1 - r/K)``       ``(1/r)(1 - r/g)``
CodeGen groups        ``C(K, r+1)``            ``C(g, r+1)`` per group
per-node storage      ``r/K`` of input         ``r/g`` of input
shuffle concurrency   1 (serial fabric)        ``G = K/g`` group shuffles
====================  =======================  ========================

The grouped scheme's load is higher (g < K) but its CodeGen is
exponentially smaller and its shuffle parallelizes perfectly across
groups — the trade the paper's "Scalable Coding" future direction asks
for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.theory import coded_comm_load
from repro.utils.subsets import binomial


def grouped_comm_load(redundancy: int, group_size: int) -> float:
    """Normalized shuffle load of the grouped scheme: Eq. (2) with K -> g.

    Every group moves ``(1/r)(1 - r/g)`` of *its* key slice, and the
    slices tile the input, so the total normalized load is the same
    expression.
    """
    if not 1 <= redundancy < group_size:
        raise ValueError(
            f"need 1 <= r < g, got r={redundancy}, g={group_size}"
        )
    return coded_comm_load(redundancy, group_size)


def grouped_codegen_groups(
    num_nodes: int, group_size: int, redundancy: int
) -> int:
    """Total multicast groups set up cluster-wide: ``G * C(g, r+1)``."""
    if num_nodes % group_size != 0:
        raise ValueError(
            f"num_nodes ({num_nodes}) not a multiple of group_size "
            f"({group_size})"
        )
    if not 1 <= redundancy < group_size:
        raise ValueError(
            f"need 1 <= r < g, got r={redundancy}, g={group_size}"
        )
    return (num_nodes // group_size) * binomial(group_size, redundancy + 1)


def grouped_storage_fraction(redundancy: int, group_size: int) -> float:
    """Per-node stored fraction of the input: ``r / g``."""
    if not 1 <= redundancy < group_size:
        raise ValueError(
            f"need 1 <= r < g, got r={redundancy}, g={group_size}"
        )
    return redundancy / group_size


@dataclass(frozen=True)
class GroupedComparison:
    """Grouped vs plain coded at one configuration.

    Attributes:
        num_nodes / group_size / redundancy: the grouped configuration.
        full_redundancy: the plain-coded ``r`` compared against.
        load_grouped / load_full: normalized shuffle loads.
        codegen_grouped / codegen_full: total multicast-group setups.
        storage_grouped / storage_full: per-node stored input fraction.
    """

    num_nodes: int
    group_size: int
    redundancy: int
    full_redundancy: int
    load_grouped: float
    load_full: float
    codegen_grouped: int
    codegen_full: int
    storage_grouped: float
    storage_full: float

    @property
    def load_ratio(self) -> float:
        """Grouped load / full load (>= 1: grouping never reduces load)."""
        return self.load_grouped / self.load_full

    @property
    def codegen_ratio(self) -> float:
        """Full CodeGen size / grouped (the scalability win)."""
        return self.codegen_full / max(self.codegen_grouped, 1)


def grouped_vs_full(
    num_nodes: int,
    group_size: int,
    redundancy: int,
    full_redundancy: int = None,
) -> GroupedComparison:
    """Compare the grouped scheme against plain CodedTeraSort.

    Args:
        num_nodes: ``K``.
        group_size: ``g`` (must divide ``K``).
        redundancy: grouped within-group ``r``.
        full_redundancy: the plain scheme's ``r``; defaults to matching
            the grouped scheme's *per-node storage* (``r_full = r K / g``
            when integral, else the same ``r`` — an equal-storage
            comparison is the fair one).

    Returns:
        The full :class:`GroupedComparison`.
    """
    if full_redundancy is None:
        scaled = redundancy * num_nodes // group_size
        if (
            scaled * group_size == redundancy * num_nodes
            and 1 <= scaled < num_nodes
        ):
            full_redundancy = scaled
        else:
            full_redundancy = redundancy
    return GroupedComparison(
        num_nodes=num_nodes,
        group_size=group_size,
        redundancy=redundancy,
        full_redundancy=full_redundancy,
        load_grouped=grouped_comm_load(redundancy, group_size),
        load_full=coded_comm_load(full_redundancy, num_nodes),
        codegen_grouped=grouped_codegen_groups(
            num_nodes, group_size, redundancy
        ),
        codegen_full=binomial(num_nodes, full_redundancy + 1),
        storage_grouped=grouped_storage_fraction(redundancy, group_size),
        storage_full=full_redundancy / num_nodes,
    )
