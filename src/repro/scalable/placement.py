"""Grouped redundant file placement (dataset replicated across groups).

The input splits into ``N = b * C(g, r)`` files indexed by member-index
``r``-subsets (as in the plain coded placement with K -> g).  Every group
stores *every* file: within group ``j``, file ``F_S`` lives on the global
ranks ``{j*g + m : m in S}``.  Per-node storage is therefore ``r / g`` of
the input — the price the grouped construction pays for intra-group-only
shuffles (the plain coded placement stores ``r / K``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.placement import CodedPlacement, split_even
from repro.kvpairs.records import RecordBatch
from repro.scalable.grouping import NodeGrouping
from repro.utils.subsets import Subset


@dataclass(frozen=True)
class GroupedFileAssignment:
    """One input file and where it lives.

    The same data is stored once per group; ``global_subsets[j]`` is the
    rank set holding it inside group ``j``.
    """

    file_id: int
    member_subset: Subset  # r-subset in member indices (0..g-1)
    global_subsets: List[Subset]  # one per group, index = group id
    data: RecordBatch


class GroupedCodedPlacement:
    """The grouped placement: plain coded placement replicated per group.

    Args:
        grouping: the node grouping (K nodes in groups of g).
        redundancy: ``r``; each file is on ``r`` members *of every group*.
        batches_per_subset: ``b``; total files ``N = b * C(g, r)``.
    """

    def __init__(
        self,
        grouping: NodeGrouping,
        redundancy: int,
        batches_per_subset: int = 1,
    ) -> None:
        if not 1 <= redundancy < grouping.group_size:
            raise ValueError(
                f"redundancy must be in [1, g-1] = "
                f"[1, {grouping.group_size - 1}], got {redundancy}"
            )
        self.grouping = grouping
        self.redundancy = redundancy
        # The member-index structure is exactly a coded placement on g.
        self.inner = CodedPlacement(
            grouping.group_size, redundancy, batches_per_subset
        )
        self.num_files = self.inner.num_files

    def member_subset_of_file(self, file_id: int) -> Subset:
        """The member-index subset of ``file_id`` (same in every group)."""
        return self.inner.subset_of_file(file_id)

    def files_of_node(self, node: int) -> List[int]:
        """Files stored on ``node`` — ``b * C(g-1, r-1)`` of them."""
        return self.inner.files_of_node(self.grouping.member_index(node))

    def files_per_node(self) -> int:
        """``b * C(g-1, r-1)``: each node stores ``r/g`` of the input."""
        return self.inner.files_per_node()

    def place(self, batch: RecordBatch) -> List[GroupedFileAssignment]:
        """Split ``batch`` into files and attach per-group rank subsets."""
        files = split_even(batch, self.num_files)
        out = []
        for f in range(self.num_files):
            member_subset = self.member_subset_of_file(f)
            out.append(
                GroupedFileAssignment(
                    file_id=f,
                    member_subset=member_subset,
                    global_subsets=[
                        self.grouping.to_global(j, member_subset)
                        for j in range(self.grouping.num_groups)
                    ],
                    data=files[f],
                )
            )
        return out

    def node_storage_bytes(self, total_bytes: int) -> float:
        """Bytes stored per node: ``r / g`` of the input."""
        return total_bytes * self.redundancy / self.grouping.group_size

    def per_node_views(
        self, assignments: List[GroupedFileAssignment]
    ) -> List[Dict[int, RecordBatch]]:
        """``views[rank] = {file_id: data}`` for every rank."""
        views: List[Dict[int, RecordBatch]] = [
            dict() for _ in range(self.grouping.num_nodes)
        ]
        for fa in assignments:
            for subset in fa.global_subsets:
                for rank in subset:
                    views[rank][fa.file_id] = fa.data
        return views
