"""Service smoke test: a real `repro serve` daemon under concurrent load.

What CI's ``service-smoke`` job runs.  Launches the daemon through the
real CLI entry point (``python -m repro serve``), joins 6 ``repro
worker`` subprocesses to its rendezvous, then drives it with 3
concurrent client threads submitting overlapping coded and uncoded
sorts on 3-worker subsets.  Asserts:

* every job's output is byte-identical to the same spec on an
  in-process thread cluster;
* at least two jobs demonstrably ran at the same time on *disjoint*
  worker subsets of the one mesh;
* elasticity: SIGKILLing 2 of the 6 workers shrinks ``workers_live``,
  respawned replacements rejoin the standing mesh mid-service, and a
  post-regrowth job is again byte-identical to its in-process run;
* ``repro status --json`` round-trips sane per-tenant stats plus the
  membership counters (``workers_live`` back to 6 after regrowth);
* a ``shutdown`` request stops the daemon cleanly (exit 0) and every
  surviving worker drains to exit 0.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--records 20000]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.kvpairs.teragen import teragen  # noqa: E402
from repro.kvpairs.validation import validate_sorted_permutation  # noqa: E402
from repro.runtime.inproc import ThreadCluster  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.session import (  # noqa: E402
    CodedTeraSortSpec,
    Session,
    TeraSortSpec,
)

NODES = 6
JOB_WORKERS = 3
CLIENTS = 3


def _partitions_bytes(run):
    return [p.to_bytes() for p in run.partitions]


def _read_addresses(daemon) -> dict:
    """Parse the daemon's startup lines for its two addresses."""
    addrs = {}
    pattern = re.compile(r"\[serve\] (rendezvous|control) (tcp://\S+)")
    for line in daemon.stdout:
        print(f"[daemon] {line.rstrip()}", flush=True)
        match = pattern.search(line)
        if match:
            addrs[match.group(1)] = match.group(2)
        if len(addrs) == 2:
            return addrs
    raise RuntimeError("daemon exited before printing its addresses")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--records", "-n", type=int, default=20_000)
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )

    specs = []
    for i in range(CLIENTS):
        data = teragen(args.records, seed=61 + i)
        spec = (
            CodedTeraSortSpec(data=data, redundancy=2)
            if i % 2
            else TeraSortSpec(data=data)
        )
        specs.append((data, spec))

    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--nodes", str(NODES),
            "--connect-timeout", "120",
            "--job-timeout", "300",
        ],
        env=env, stdout=subprocess.PIPE, text=True, bufsize=1,
    )
    workers = []
    killed = []
    try:
        addrs = _read_addresses(daemon)
        print(f"[smoke] daemon up; joining {NODES} `repro worker` "
              f"subprocesses", flush=True)
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--join", addrs["rendezvous"],
                    "--connect-timeout", "120",
                ],
                env=env,
            )
            for _ in range(NODES)
        ]

        client = ServiceClient(addrs["control"], connect_timeout=120.0)
        results = [None] * CLIENTS
        errors = []

        def submit_and_wait(i):
            try:
                handle = client.submit(
                    specs[i][1], tenant=f"tenant{i}", workers=JOB_WORKERS
                )
                results[i] = (handle.job_id, handle.result(timeout=300))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((i, exc))

        threads = [
            threading.Thread(target=submit_and_wait, args=(i,))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        if errors:
            print(f"[smoke] FAIL: client errors: {errors}")
            return 1

        # Byte identity vs dedicated in-process runs.
        with Session(ThreadCluster(JOB_WORKERS, recv_timeout=120)) as s:
            for i, (data, spec) in enumerate(specs):
                _, run = results[i]
                validate_sorted_permutation(data, run.partitions)
                ref = s.submit(spec).result(timeout=300)
                if _partitions_bytes(run) != _partitions_bytes(ref):
                    print(f"[smoke] FAIL: job {i} diverged from inproc")
                    return 1
        print(f"[smoke] {CLIENTS} concurrent jobs byte-identical with "
              f"inproc", flush=True)

        # Concurrency proof: some pair of jobs overlapped in time on
        # disjoint subsets (the mesh fits two 3-worker jobs at once).
        rows = {r["job_id"]: r for r in client.status()}
        overlapped = False
        job_rows = [rows[jid] for jid, _ in results]
        for i in range(len(job_rows)):
            for j in range(i + 1, len(job_rows)):
                a, b = job_rows[i], job_rows[j]
                overlap = min(a["finished_at"], b["finished_at"]) - max(
                    a["started_at"], b["started_at"]
                )
                disjoint = not (
                    set(a["workers_used"]) & set(b["workers_used"])
                )
                if overlap > 0 and disjoint:
                    overlapped = True
        if not overlapped:
            print("[smoke] FAIL: no two jobs overlapped on disjoint "
                  f"subsets: {job_rows}")
            return 1
        print("[smoke] concurrent occupancy of disjoint subsets confirmed",
              flush=True)

        # Elasticity lane: SIGKILL 2 workers, respawn replacements, and
        # prove the regrown mesh sorts byte-identically again.
        def wait_stats(predicate, what, timeout=60.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                stats = client.stats()
                if predicate(stats):
                    return stats
                time.sleep(0.2)
            raise RuntimeError(f"stats never reached {what}: {client.stats()}")

        killed, workers = workers[:2], workers[2:]
        for w in killed:
            w.send_signal(signal.SIGKILL)
        wait_stats(lambda s: s.workers_live == NODES - 2, "2 dead")
        print(f"[smoke] killed 2 workers; live={NODES - 2}", flush=True)

        workers += [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--join", addrs["rendezvous"],
                    "--connect-timeout", "120",
                ],
                env=env,
            )
            for _ in range(2)
        ]
        regrown = wait_stats(
            lambda s: s.workers_live == NODES, "regrowth", timeout=120.0
        )
        if regrown.workers_joined != 2:
            print(f"[smoke] FAIL: expected 2 rejoins, "
                  f"got {regrown.workers_joined}")
            return 1
        print(f"[smoke] mesh regrown to {NODES} "
              f"(epoch {regrown.membership_epoch})", flush=True)

        elastic_data = teragen(args.records, seed=67)
        elastic_spec = CodedTeraSortSpec(data=elastic_data, redundancy=2)
        run = client.submit(
            elastic_spec, tenant="elastic", workers=JOB_WORKERS
        ).result(timeout=300)
        validate_sorted_permutation(elastic_data, run.partitions)
        with Session(ThreadCluster(JOB_WORKERS, recv_timeout=120)) as s:
            ref = s.submit(elastic_spec).result(timeout=300)
        if _partitions_bytes(run) != _partitions_bytes(ref):
            print("[smoke] FAIL: post-regrowth job diverged from inproc")
            return 1
        print("[smoke] post-regrowth job byte-identical with inproc",
              flush=True)

        # Stats via the CLI surface (`repro status --json`).
        status = subprocess.run(
            [
                sys.executable, "-m", "repro", "status",
                "--connect", addrs["control"], "--json",
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        if status.returncode != 0:
            print(f"[smoke] FAIL: repro status rc={status.returncode}: "
                  f"{status.stderr}")
            return 1
        doc = json.loads(status.stdout)
        if doc["stats"]["jobs_done"] != CLIENTS + 1:
            print(f"[smoke] FAIL: stats report {doc['stats']['jobs_done']} "
                  f"done, expected {CLIENTS + 1}")
            return 1
        if (
            doc["stats"]["workers_live"] != NODES
            or doc["stats"]["workers_joined"] != 2
        ):
            print(f"[smoke] FAIL: status --json missed the regrowth: "
                  f"{doc['stats']}")
            return 1
        print(f"[smoke] status --json: {doc['stats']['jobs_done']} done, "
              f"{len(doc['stats']['tenants'])} tenants, "
              f"{doc['stats']['workers_live']} live after regrowth",
              flush=True)

        client.shutdown()
        daemon_rc = daemon.wait(timeout=60)
        worker_rcs = [w.wait(timeout=60) for w in workers]
        print(f"[smoke] daemon rc={daemon_rc}, worker rcs={worker_rcs}",
              flush=True)
        if daemon_rc != 0 or worker_rcs != [0] * NODES:
            print("[smoke] FAIL: unclean shutdown")
            return 1
        print("[smoke] PASS — multi-tenant service served "
              f"{CLIENTS} concurrent clients on one {NODES}-worker mesh, "
              "survived losing 2 workers, and regrew to full strength")
        return 0
    finally:
        for proc in [daemon] + workers + killed:
            if proc.poll() is None:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
