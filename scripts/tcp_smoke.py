"""Distributed smoke test: 6 real `repro worker` agents over localhost TCP.

What CI's ``tcp-smoke`` job runs.  Launches 6 worker subprocesses through
the real CLI entry point (``python -m repro worker --join ...``), runs
both an uncoded and a coded TeraSort through one ``Session`` over
``tcp://127.0.0.1`` (the coded one on the pipelined parallel schedule,
so the non-blocking engine crosses real TCP too), and asserts the
outputs are byte-identical with the in-process thread backend.  Workers
must then exit 0 on session close — a worker that lingers or dies
mid-run fails the smoke.

Usage::

    PYTHONPATH=src python scripts/tcp_smoke.py [--nodes 6] [--records 20000]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.kvpairs.teragen import teragen  # noqa: E402
from repro.kvpairs.validation import validate_sorted_permutation  # noqa: E402
from repro.runtime.inproc import ThreadCluster  # noqa: E402
from repro.runtime.tcp import TcpCluster  # noqa: E402
from repro.session import (  # noqa: E402
    CodedTeraSortSpec,
    Session,
    TeraSortSpec,
)


def _partitions_bytes(run):
    return [p.to_bytes() for p in run.partitions]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", "-K", type=int, default=6)
    parser.add_argument("--redundancy", "-r", type=int, default=2)
    parser.add_argument("--records", "-n", type=int, default=20_000)
    args = parser.parse_args(argv)
    k, r = args.nodes, args.redundancy

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    data = teragen(args.records, seed=31)

    with TcpCluster(
        k, "tcp://127.0.0.1:0", timeout=180, connect_timeout=120
    ) as cluster:
        print(f"[smoke] rendezvous on {cluster.address}; launching {k} "
              f"`repro worker` subprocesses", flush=True)
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--join", cluster.address,
                    "--connect-timeout", "120",
                ],
                env=env,
            )
            for _ in range(k)
        ]
        try:
            with Session(cluster) as session:
                uncoded = session.submit(TeraSortSpec(data=data))
                coded = session.submit(
                    CodedTeraSortSpec(
                        data=data, redundancy=r, schedule="parallel"
                    )
                )
                tcp_uncoded, tcp_coded = uncoded.result(), coded.result()
        finally:
            rcs = []
            for proc in workers:
                try:
                    rcs.append(proc.wait(timeout=60))
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    rcs.append("killed")

    print(f"[smoke] worker exit codes: {rcs}", flush=True)
    if rcs != [0] * k:
        print("[smoke] FAIL: workers did not all exit cleanly")
        return 1

    with Session(ThreadCluster(k, recv_timeout=120)) as session:
        ref_uncoded = session.submit(TeraSortSpec(data=data)).result()
        ref_coded = session.submit(
            CodedTeraSortSpec(data=data, redundancy=r, schedule="parallel")
        ).result()

    for label, run, ref in (
        ("TeraSort", tcp_uncoded, ref_uncoded),
        ("CodedTeraSort", tcp_coded, ref_coded),
    ):
        validate_sorted_permutation(data, run.partitions)
        if _partitions_bytes(run) != _partitions_bytes(ref):
            print(f"[smoke] FAIL: {label} over TCP diverged from inproc")
            return 1
        shuffle = run.traffic.load_bytes("shuffle")
        print(f"[smoke] {label}: byte-identical with inproc "
              f"({run.total_records} records, shuffle {shuffle} B)",
              flush=True)

    gain = (
        ref_uncoded.traffic.load_bytes("shuffle")
        / max(1, tcp_coded.traffic.load_bytes("shuffle"))
    )
    print(f"[smoke] PASS — coded shuffle moved {gain:.2f}x fewer bytes "
          f"at r={r} on a real {k}-worker TCP mesh")
    return 0


if __name__ == "__main__":
    sys.exit(main())
