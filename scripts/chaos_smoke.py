"""Chaos smoke: a fault matrix against the real TCP backend.

What CI's ``chaos-smoke`` job runs.  Each lane injects one failure mode
via ``$REPRO_FAULT_PLAN`` into a TeraSort over ``tcp://127.0.0.1`` with
real ``repro worker`` subprocesses kept under a supervisor restart loop
(the documented deployment mode), then asserts

* the job **completes with byte-identical output** to a fault-free
  reference run — via the session's automatic retry for the crash lanes
  (>= 2 recorded attempts, typed :class:`WorkerFailure` cause) and via
  speculative map re-execution for the straggler lane;
* wall time stays **bounded** (``--lane-timeout``, default 120 s — far
  below the failure-free x5-straggler time at CI scale, so a hang or a
  missed retry fails loudly).

Lanes: ``map-crash`` (worker hard-exits entering map), ``shuffle-crash``
(worker hard-exits on a mid-shuffle send), ``straggler-x5`` (one
worker's map paced 5x slower, speculation on).

Writes a JSON artifact with per-lane wall time and attempt counts.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--nodes 4] \
        [--records 20000] [--out chaos_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.kvpairs.datasource import TeragenSource  # noqa: E402
from repro.kvpairs.validation import validate_sorted_permutation  # noqa: E402
from repro.runtime.errors import WorkerFailure  # noqa: E402
from repro.runtime.process import ProcessCluster  # noqa: E402
from repro.runtime.tcp import TcpCluster  # noqa: E402
from repro.session import Session, TeraSortSpec  # noqa: E402
from repro.testing.faults import ENV_VAR  # noqa: E402

#: (lane name, fault plan, needs automatic retry to finish)
LANES = [
    ("map-crash", "stage.crash,rank=1,stage=map,job_lt=1", True),
    ("shuffle-crash", "send.crash,rank=2,stage=shuffle,job_lt=1", True),
    ("straggler-x5", "stage.slow,rank=1,stage=map,factor=5", False),
]


class _Supervisor:
    """Keeps K `repro worker` subprocess slots alive (restart loop)."""

    def __init__(self, address: str, nodes: int, env: dict) -> None:
        self._address = address
        self._env = env
        self._procs = [self._spawn() for _ in range(nodes)]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _spawn(self):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--join", self._address, "--connect-timeout", "120", "--quiet"],
            env=self._env,
        )

    def _loop(self) -> None:
        while not self._stop.is_set():
            for i, proc in enumerate(self._procs):
                if proc.poll() is not None:
                    self._procs[i] = self._spawn()
            time.sleep(0.1)

    def halt(self) -> None:
        self._stop.set()
        self._thread.join()

    def reap(self) -> None:
        self.halt()
        for proc in self._procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()


def run_lane(name, plan, needs_retry, source, reference, args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env[ENV_VAR] = plan
    spec = TeraSortSpec(
        input=source,
        speculation=not needs_retry,  # the straggler lane speculates
        speculation_min_wait=0.2,
    )
    with TcpCluster(
        args.nodes, "tcp://127.0.0.1:0", timeout=args.lane_timeout,
        connect_timeout=120, heartbeat_interval=0.1, failure_timeout=30.0,
    ) as cluster:
        print(f"[chaos/{name}] plan={plan!r} on {cluster.address}",
              flush=True)
        supervisor = _Supervisor(cluster.address, args.nodes, env)
        try:
            with Session(
                cluster, max_retries=2, retry_backoff=0.2
            ) as session:
                t0 = time.monotonic()
                handle = session.submit(spec)
                run = handle.result(timeout=args.lane_timeout)
                wall = time.monotonic() - t0
                supervisor.halt()
        finally:
            supervisor.reap()

    if [p.to_bytes() for p in run.partitions] != reference:
        raise SystemExit(f"[chaos/{name}] FAIL: output diverged from the "
                         f"fault-free reference")
    if wall > args.lane_timeout:
        raise SystemExit(f"[chaos/{name}] FAIL: took {wall:.1f}s "
                         f"(bound {args.lane_timeout}s)")
    attempts = len(handle.attempts)
    if needs_retry:
        if attempts < 2:
            raise SystemExit(f"[chaos/{name}] FAIL: expected >= 2 attempts, "
                             f"recorded {attempts}")
        first = handle.attempts[0].error
        if not isinstance(first, WorkerFailure):
            raise SystemExit(f"[chaos/{name}] FAIL: first attempt error is "
                             f"{type(first).__name__}, not WorkerFailure")
    spec_meta = run.meta.get("speculation")
    print(f"[chaos/{name}] ok: byte-identical in {wall:.1f}s, "
          f"{attempts} attempt(s)"
          + (f", speculation {spec_meta}" if spec_meta else ""), flush=True)
    return {
        "plan": plan,
        "wall_seconds": wall,
        "attempts": attempts,
        "speculation": spec_meta,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", "-K", type=int, default=4)
    parser.add_argument("--records", "-n", type=int, default=20_000)
    parser.add_argument("--lane-timeout", type=float, default=120.0,
                        help="wall-time bound per lane (seconds)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the per-lane JSON artifact here")
    args = parser.parse_args(argv)
    os.environ.pop(ENV_VAR, None)  # the reference and driver run fault-free

    source = TeragenSource(args.records, seed=61)
    with Session(ProcessCluster(args.nodes, timeout=120)) as session:
        ref_run = session.submit(TeraSortSpec(input=source)).result()
    reference = [p.to_bytes() for p in ref_run.partitions]
    validate_sorted_permutation(source.load(), ref_run.partitions)

    results = {
        "nodes": args.nodes,
        "records": args.records,
        "lanes": {},
    }
    for name, plan, needs_retry in LANES:
        results["lanes"][name] = run_lane(
            name, plan, needs_retry, source, reference, args
        )
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(results, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    print(f"[chaos] PASS — {len(LANES)} fault lanes byte-identical within "
          f"{args.lane_timeout:.0f}s each on a real "
          f"{args.nodes}-worker TCP mesh")
    return 0


if __name__ == "__main__":
    sys.exit(main())
